// Builds the mini-YARN program model: the static structure CrashTuner's
// analyses consume. Class, field and package names follow the real
// Hadoop2/Yarn code base (Table 2 of the paper lists many of them).
#include "src/systems/yarn/yarn_defs.h"

#include <map>

#include "src/common/strings.h"
#include "src/logging/statement.h"
#include "src/model/catalog.h"

namespace ctyarn {

namespace {

using ctmodel::AccessKind;
using ctmodel::AccessPointDecl;
using ctmodel::FieldDecl;
using ctmodel::IoMethodDecl;
using ctmodel::IoPointDecl;
using ctmodel::LogArg;
using ctmodel::LogBinding;
using ctmodel::ProgramModel;
using ctmodel::TypeDecl;

void AddType(ProgramModel* model, const std::string& name, const std::string& supertype = "",
             std::vector<std::string> elements = {}, bool closeable = false) {
  TypeDecl type;
  type.name = name;
  type.supertype = supertype;
  type.element_types = std::move(elements);
  type.closeable = closeable;
  model->AddType(type);
}

void AddField(ProgramModel* model, const std::string& clazz, const std::string& name,
              const std::string& type, bool ctor_only = false) {
  FieldDecl field;
  field.clazz = clazz;
  field.name = name;
  field.type = type;
  field.set_only_in_constructor = ctor_only;
  model->AddField(field);
}

struct PointSpec {
  std::string field;
  AccessKind kind = AccessKind::kRead;
  std::string clazz;
  std::string method;
  int line = 0;
  std::string op{};
  std::string context{};  // anchor override when the hook fires in another frame
  bool unused = false;
  bool sanity = false;
  bool returned = false;
  bool executable = true;
};

int AddPoint(ProgramModel* model, const PointSpec& spec) {
  AccessPointDecl point;
  point.field_id = spec.field;
  point.kind = spec.kind;
  point.clazz = spec.clazz;
  point.method = spec.method;
  point.line = spec.line;
  point.collection_op = spec.op;
  point.context_method = spec.context;
  point.value_unused = spec.unused;
  point.sanity_checked = spec.sanity;
  point.returned_directly = spec.returned;
  point.executable = spec.executable;
  return model->AddAccessPoint(point);
}

void AddMethod(ProgramModel* model, const std::string& clazz, const std::string& name,
               bool entry = false) {
  ctmodel::MethodDecl method;
  method.clazz = clazz;
  method.name = name;
  method.entry_point = entry;
  model->AddMethod(method);
}

void AddCall(ProgramModel* model, const std::string& caller, const std::string& callee,
             ctmodel::CallKind kind = ctmodel::CallKind::kStatic) {
  model->AddCallEdge({caller, callee, kind});
}

void BuildTypes(ProgramModel* model) {
  ctmodel::AddBaseTypes(model);
  // Enum state types are base types ("Enum" in the paper's exclusion list).
  {
    TypeDecl state;
    state.name = "yarn.server.resourcemanager.rmapp.RMAppState";
    state.is_base = true;
    model->AddType(state);
  }

  // Node group (Table 2).
  AddType(model, "yarn.api.records.NodeId");
  AddType(model, "java.net.InetSocketAddress");
  AddType(model, "yarn.api.records.impl.pb.NodeIdPBImpl", "yarn.api.records.NodeId");
  // App attempt group.
  AddType(model, "yarn.api.records.ApplicationAttemptId");
  AddType(model, "yarn.server.scheduler.SchedulerApplicationAttempt");
  AddType(model, "yarn.server.resourcemanager.rmapp.attempt.RMAppAttemptImpl");
  AddType(model, "yarn.api.records.impl.pb.ApplicationAttemptIdPBImpl",
          "yarn.api.records.ApplicationAttemptId");
  // Application group.
  AddType(model, "yarn.api.records.ApplicationId");
  AddType(model, "yarn.server.resourcemanager.rmapp.RMAppImpl");
  AddType(model, "yarn.server.resourcemanager.Application");
  AddType(model, "yarn.server.nodemanager.containermanager.application.ApplicationImpl");
  AddType(model, "yarn.api.records.impl.pb.ApplicationIdPBImpl", "yarn.api.records.ApplicationId");
  // Container group.
  AddType(model, "yarn.api.records.ContainerId");
  AddType(model, "yarn.api.records.Container");
  AddType(model, "yarn.server.nodemanager.containermanager.container.ContainerImpl");
  AddType(model, "yarn.server.resourcemanager.rmcontainer.RMContainerImpl");
  AddType(model, "yarn.api.records.impl.pb.ContainerPBImpl", "yarn.api.records.Container");
  AddType(model, "yarn.api.records.impl.pb.ContainerIdPBImpl", "yarn.api.records.ContainerId");
  // Task attempt group.
  AddType(model, "mapreduce.v2.api.records.TaskAttemptId");
  AddType(model, "mapreduce.MapTaskAttemptImpl");
  AddType(model, "mapreduce.ReduceTaskAttemptImpl");
  AddType(model, "mapreduce.v2.app.job.impl.TaskAttemptImpl");
  AddType(model, "mapreduce.v2.api.records.impl.pb.TaskAttemptIdPBImpl",
          "mapreduce.v2.api.records.TaskAttemptId");
  // Task / JVM.
  AddType(model, "mapreduce.v2.api.records.TaskId");
  AddType(model, "mapred.JVMId");
  // Scheduler-internal value type (not meta-info by itself).
  AddType(model, "yarn.server.scheduler.SchedulerNode");
  // Scheduler class hierarchy: lets virtual calls against the abstract
  // scheduler dispatch to the capacity scheduler in the call graph.
  AddType(model, "AbstractYarnScheduler");
  AddType(model, "CapacityScheduler", "AbstractYarnScheduler");

  // Collections over the above.
  AddType(model, "HashMap<NodeId,SchedulerNode>", "",
          {"yarn.api.records.NodeId", "yarn.server.scheduler.SchedulerNode"});
  AddType(model, "HashMap<ContainerId,RMContainer>", "",
          {"yarn.api.records.ContainerId", "yarn.server.resourcemanager.rmcontainer.RMContainerImpl"});
  AddType(model, "HashMap<ApplicationId,RMApp>", "",
          {"yarn.api.records.ApplicationId", "yarn.server.resourcemanager.rmapp.RMAppImpl"});
  AddType(model, "HashMap<ApplicationAttemptId,SchedulerApplicationAttempt>", "",
          {"yarn.api.records.ApplicationAttemptId",
           "yarn.server.scheduler.SchedulerApplicationAttempt"});
  AddType(model, "List<NodeId>", "", {"yarn.api.records.NodeId"});
  AddType(model, "HashMap<TaskId,TaskAttemptId>", "",
          {"mapreduce.v2.api.records.TaskId", "mapreduce.v2.api.records.TaskAttemptId"});
  AddType(model, "HashMap<TaskAttemptId,ContainerId>", "",
          {"mapreduce.v2.api.records.TaskAttemptId", "yarn.api.records.ContainerId"});
  AddType(model, "HashMap<NodeId,Integer>", "",
          {"yarn.api.records.NodeId", "java.lang.Integer"});
  AddType(model, "Set<TaskAttemptId>", "", {"mapreduce.v2.api.records.TaskAttemptId"});
  AddType(model, "HashMap<JVMId,String>", "", {"mapred.JVMId", "java.lang.String"});

  // IO classes (Table 8): Closeable implementations with read/write methods.
  AddType(model, "org.apache.hadoop.fs.FSDataOutputStream", "", {}, /*closeable=*/true);
  AddType(model, "yarn.server.resourcemanager.recovery.FileSystemRMStateStore", "", {},
          /*closeable=*/true);
}

void BuildFields(ProgramModel* model) {
  AddField(model, "AbstractYarnScheduler", "nodes", "HashMap<NodeId,SchedulerNode>");
  AddField(model, "AbstractYarnScheduler", "containers", "HashMap<ContainerId,RMContainer>");
  AddField(model, "RMContextImpl", "apps", "HashMap<ApplicationId,RMApp>");
  AddField(model, "RMContextImpl", "attempts",
           "HashMap<ApplicationAttemptId,SchedulerApplicationAttempt>");
  AddField(model, "OpportunisticContainerAllocator", "nodeList", "List<NodeId>");
  AddField(model, "RMAppImpl", "currentAttempt", "yarn.api.records.ApplicationAttemptId");
  AddField(model, "RMAppImpl", "state", "yarn.server.resourcemanager.rmapp.RMAppState");
  AddField(model, "NMContext", "nodeId", "yarn.api.records.NodeId");
  AddField(model, "NMContext", "hostName", "java.lang.String");
  AddField(model, "MRAppMaster", "commit", "HashMap<TaskId,TaskAttemptId>");
  AddField(model, "MRAppMaster", "amContainers", "HashMap<TaskAttemptId,ContainerId>");
  AddField(model, "MRAppMaster", "amNodes", "HashMap<NodeId,Integer>");
  AddField(model, "MRAppMaster", "taskProgress", "HashMap<TaskAttemptId,ContainerId>");
  AddField(model, "JvmTaskRegistry", "launchedJVMs", "Set<TaskAttemptId>");
  AddField(model, "ContainerLaunch", "jvmRecords", "HashMap<JVMId,String>");
  // Constructor-only id fields: exercise the containing-class rule of
  // Definition 2 (RMContainerImpl is the paper's own example).
  AddField(model, "yarn.server.resourcemanager.rmcontainer.RMContainerImpl", "containerId",
           "yarn.api.records.ContainerId", /*ctor_only=*/true);
  AddField(model, "yarn.server.scheduler.SchedulerApplicationAttempt", "attemptId",
           "yarn.api.records.ApplicationAttemptId", /*ctor_only=*/true);
  AddField(model, "yarn.server.resourcemanager.rmapp.RMAppImpl", "applicationId",
           "yarn.api.records.ApplicationId", /*ctor_only=*/true);
  AddField(model, "mapreduce.v2.app.job.impl.TaskAttemptImpl", "attemptId",
           "mapreduce.v2.api.records.TaskAttemptId", /*ctor_only=*/true);
}

void BuildStatements(YarnArtifacts* artifacts) {
  auto& registry = ctlog::StatementRegistry::Instance();
  auto& stmts = artifacts->stmts;
  auto& model = artifacts->model;

  auto bind = [&](int id, std::vector<LogArg> args) {
    LogBinding binding;
    binding.statement_id = id;
    binding.args = std::move(args);
    model.BindLog(binding);
  };

  stmts.nm_registered = registry.Register(ctlog::Level::kInfo,
                                          "NodeManager from {} registered as {}",
                                          "ResourceTrackerService.registerNodeManager");
  bind(stmts.nm_registered, {{"java.lang.String", "NMContext.hostName"},
                             {"yarn.api.records.NodeId", "NMContext.nodeId"}});

  stmts.assigned_container =
      registry.Register(ctlog::Level::kInfo, "Assigned container {} on host {}",
                        "AbstractYarnScheduler.allocateContainer");
  bind(stmts.assigned_container,
       {{"yarn.api.records.ContainerId", ""}, {"yarn.api.records.NodeId", ""}});

  stmts.container_to_attempt = registry.Register(
      ctlog::Level::kInfo, "Assigned container {} to {}", "TaskAttemptListener.assign");
  bind(stmts.container_to_attempt,
       {{"yarn.api.records.ContainerId", ""}, {"mapreduce.v2.api.records.TaskAttemptId", ""}});

  stmts.jvm_given_task = registry.Register(ctlog::Level::kInfo, "JVM with ID: {} given task: {}",
                                           "ContainerLaunch.launchJvm");
  bind(stmts.jvm_given_task,
       {{"mapred.JVMId", ""}, {"mapreduce.v2.api.records.TaskAttemptId", ""}});

  stmts.app_submitted = registry.Register(ctlog::Level::kInfo, "Submitted application {}",
                                          "ClientRMService.submitApplication");
  bind(stmts.app_submitted, {{"yarn.api.records.ApplicationId", ""}});

  stmts.master_container =
      registry.Register(ctlog::Level::kInfo, "Assigned master container {} on host {} for attempt {}",
                        "RMAppAttemptImpl.storeAttempt");
  bind(stmts.master_container,
       {{"yarn.api.records.ContainerId", ""},
        {"yarn.api.records.NodeId", ""},
        {"yarn.api.records.ApplicationAttemptId", ""}});

  stmts.am_registered = registry.Register(
      ctlog::Level::kInfo, "ApplicationMaster for application {} attempt {} registered on {}",
      "ApplicationMasterService.registerApplicationMaster");
  bind(stmts.am_registered, {{"yarn.api.records.ApplicationId", ""},
                             {"yarn.api.records.ApplicationAttemptId", ""},
                             {"yarn.api.records.NodeId", ""}});

  stmts.node_lost = registry.Register(ctlog::Level::kWarn, "Node {} LOST, removing from cluster",
                                      "NodesListManager.handleNodeLost");
  bind(stmts.node_lost, {{"yarn.api.records.NodeId", ""}});

  stmts.task_committed = registry.Register(ctlog::Level::kInfo, "Task {} committed by attempt {}",
                                           "TaskAttemptListener.done");
  bind(stmts.task_committed,
       {{"mapreduce.v2.api.records.TaskId", ""}, {"mapreduce.v2.api.records.TaskAttemptId", ""}});

  stmts.app_finished = registry.Register(ctlog::Level::kInfo, "Application {} finished with state {}",
                                         "RMAppImpl.finishApplication");
  bind(stmts.app_finished, {{"yarn.api.records.ApplicationId", ""},
                            {"yarn.server.resourcemanager.rmapp.RMAppState", "RMAppImpl.state"}});
}

void BuildPoints(YarnArtifacts* artifacts) {
  auto& model = artifacts->model;
  auto& points = artifacts->points;
  const bool legacy = artifacts->mode == YarnMode::kLegacy;

  // addNode is inlined into the register RPC at runtime, so the innermost
  // frame the tracer sees is registerNodeManager, not the declaring method.
  points.rm_register_node_write =
      AddPoint(&model, {.field = "AbstractYarnScheduler.nodes",
                        .kind = AccessKind::kWrite,
                        .clazz = "AbstractYarnScheduler",
                        .method = "addNode",
                        .line = 88,
                        .op = "put",
                        .context = "ResourceTrackerService.registerNodeManager"});
  points.rm_allocate_current_attempt =
      AddPoint(&model, {.field = "RMAppImpl.currentAttempt",
                        .kind = AccessKind::kRead,
                        .clazz = "OpportunisticAMSProcessor",
                        .method = "allocate",
                        .line = 4});
  points.rm_allocate_node_candidate =
      AddPoint(&model, {.field = "OpportunisticContainerAllocator.nodeList",
                        .kind = AccessKind::kRead,
                        .clazz = "OpportunisticContainerAllocator",
                        .method = "allocateNodes",
                        .line = 212,
                        .op = "get"});
  points.rm_allocate_node_guarded =
      AddPoint(&model, {.field = "AbstractYarnScheduler.nodes",
                        .kind = AccessKind::kRead,
                        .clazz = "CapacityScheduler",
                        .method = "allocateGuaranteed",
                        .line = 98,
                        .op = "get",
                        .sanity = true});
  points.rm_confirm_container = AddPoint(&model, {.field = "AbstractYarnScheduler.containers",
                                                  .kind = AccessKind::kRead,
                                                  .clazz = "AbstractYarnScheduler",
                                                  .method = "confirmContainer",
                                                  .line = 301,
                                                  .op = "get"});

  // The getScheNode structure of YARN-9164 (Fig. 10): one returned-directly
  // read promoted to 43 call sites — 5 unused, 25 sanity-checked, 13 kept, of
  // which two are on executed paths.
  std::vector<int> sites;
  points.rm_complete_container_site =
      AddPoint(&model, {.field = "AbstractYarnScheduler.nodes",
                        .kind = AccessKind::kRead,
                        .clazz = "AbstractYarnScheduler",
                        .method = "completeContainer",
                        .line = 5});
  sites.push_back(points.rm_complete_container_site);
  points.rm_node_report_site = AddPoint(&model, {.field = "AbstractYarnScheduler.nodes",
                                                 .kind = AccessKind::kRead,
                                                 .clazz = "NodeListManager",
                                                 .method = "getNodeReport",
                                                 .line = 77});
  sites.push_back(points.rm_node_report_site);
  for (int i = 0; i < 5; ++i) {
    sites.push_back(AddPoint(&model, {.field = "AbstractYarnScheduler.nodes",
                                      .kind = AccessKind::kRead,
                                      .clazz = "SchedulerUtils",
                                      .method = "logNodeInfo" + std::to_string(i),
                                      .line = 10 + i,
                                      .unused = true,
                                      .executable = false}));
  }
  for (int i = 0; i < 25; ++i) {
    sites.push_back(AddPoint(&model, {.field = "AbstractYarnScheduler.nodes",
                                      .kind = AccessKind::kRead,
                                      .clazz = "CapacityScheduler",
                                      .method = "nodeUpdate" + std::to_string(i),
                                      .line = 40 + i,
                                      .sanity = true,
                                      .executable = false}));
  }
  for (int i = 0; i < 11; ++i) {
    sites.push_back(AddPoint(&model, {.field = "AbstractYarnScheduler.nodes",
                                      .kind = AccessKind::kRead,
                                      .clazz = "FiCaSchedulerApp",
                                      .method = "reserve" + std::to_string(i),
                                      .line = 60 + i,
                                      .executable = false}));
  }
  {
    ctmodel::AccessPointDecl promoted;
    promoted.field_id = "AbstractYarnScheduler.nodes";
    promoted.kind = AccessKind::kRead;
    promoted.clazz = "AbstractYarnScheduler";
    promoted.method = "getScheNode";
    promoted.line = 2;
    promoted.collection_op = "get";
    promoted.returned_directly = true;
    promoted.promoted_sites = sites;
    promoted.executable = false;
    points.rm_getschenode_read = model.AddAccessPoint(promoted);
  }

  points.rm_app_status_read = AddPoint(&model, {.field = "RMContextImpl.apps",
                                                .kind = AccessKind::kRead,
                                                .clazz = "RMAppImpl",
                                                .method = "statusUpdate",
                                                .line = 510,
                                                .op = "get"});
  points.rm_container_progress_read = AddPoint(&model, {.field = "AbstractYarnScheduler.containers",
                                                        .kind = AccessKind::kRead,
                                                        .clazz = "ContainerImpl",
                                                        .method = "handle",
                                                        .line = 120,
                                                        .op = "get"});
  points.rm_container_finishing_read = AddPoint(&model, {.field = "AbstractYarnScheduler.containers",
                                                         .kind = AccessKind::kRead,
                                                         .clazz = "ContainerImpl",
                                                         .method = "handle",
                                                         .line = 145,
                                                         .op = "get"});
  points.rm_release_attempt_read = AddPoint(&model, {.field = "RMContextImpl.attempts",
                                                     .kind = AccessKind::kRead,
                                                     .clazz = "SchedulerApplicationAttempt",
                                                     .method = "releaseContainers",
                                                     .line = 233,
                                                     .op = "get"});
  points.rm_finish_app_read = AddPoint(&model, {.field = "RMContextImpl.apps",
                                                .kind = AccessKind::kRead,
                                                .clazz = "RMAppImpl",
                                                .method = "finishApplication",
                                                .line = 620,
                                                .op = "get"});
  points.rm_cluster_status_read = AddPoint(&model, {.field = "RMContextImpl.apps",
                                                    .kind = AccessKind::kRead,
                                                    .clazz = "ClientRMService",
                                                    .method = "getClusterStatus",
                                                    .line = 145,
                                                    .op = "get"});
  points.rm_internal_launched_read = AddPoint(&model, {.field = "AbstractYarnScheduler.containers",
                                                       .kind = AccessKind::kRead,
                                                       .clazz = "RMContainerImpl",
                                                       .method = "processLaunched",
                                                       .line = 402,
                                                       .op = "get"});

  // ApplicationMaster side. Trunk carries the YARN-5918 fix (a sanity check
  // before using the node resource), so the point is pruned there; the
  // legacy model lacks the check, reproducing Fig. 2.
  points.am_node_resource_read = AddPoint(&model, {.field = "MRAppMaster.amNodes",
                                                   .kind = AccessKind::kRead,
                                                   .clazz = "MRAppMaster",
                                                   .method = "getNodeResource",
                                                   .line = 2,
                                                   .op = "get",
                                                   .context = "RMContainerAllocator.assigned",
                                                   .sanity = !legacy});
  points.am_commit_write = AddPoint(&model, {.field = "MRAppMaster.commit",
                                             .kind = AccessKind::kWrite,
                                             .clazz = "TaskAttemptListener",
                                             .method = "commitPending",
                                             .line = 2,
                                             .op = "put"});
  points.am_task_progress_write = AddPoint(&model, {.field = "MRAppMaster.taskProgress",
                                                    .kind = AccessKind::kWrite,
                                                    .clazz = "MRAppMaster",
                                                    .method = "statusUpdate",
                                                    .line = 320,
                                                    .op = "put"});
  points.am_containers_done_read = AddPoint(&model, {.field = "MRAppMaster.amContainers",
                                                     .kind = AccessKind::kRead,
                                                     .clazz = "TaskAttemptListener",
                                                     .method = "done",
                                                     .line = 140,
                                                     .op = "get"});

  // NodeManager / task JVM side.
  points.nm_task_init_write = AddPoint(&model, {.field = "JvmTaskRegistry.launchedJVMs",
                                                .kind = AccessKind::kWrite,
                                                .clazz = "TaskAttemptImpl",
                                                .method = "initialize",
                                                .line = 55,
                                                .op = "add"});
  points.nm_jvm_record_write = AddPoint(&model, {.field = "ContainerLaunch.jvmRecords",
                                                 .kind = AccessKind::kWrite,
                                                 .clazz = "ContainerLaunch",
                                                 .method = "launchJvm",
                                                 .line = 71,
                                                 .op = "put"});
}

// Declared call structure (§3.1.3): which methods are RPC / dispatcher /
// timer entry points (a fresh stack is born there), which calls stay on the
// caller's stack, and which hop to another thread. The static context
// enumeration reproduces every profiler-observable stack from this.
void BuildMethods(ProgramModel* model) {
  // ResourceManager RPC and dispatcher entry points.
  AddMethod(model, "ResourceTrackerService", "registerNodeManager", /*entry=*/true);
  AddMethod(model, "ClientRMService", "submitApplication", /*entry=*/true);
  AddMethod(model, "ClientRMService", "getClusterStatus", /*entry=*/true);
  AddMethod(model, "ApplicationMasterService", "registerApplicationMaster", /*entry=*/true);
  AddMethod(model, "OpportunisticAMSProcessor", "allocate", /*entry=*/true);
  AddMethod(model, "CapacityScheduler", "containerCompleted", /*entry=*/true);
  AddMethod(model, "SchedulerApplicationAttempt", "releaseContainers", /*entry=*/true);
  AddMethod(model, "RMAppImpl", "finishApplication", /*entry=*/true);
  AddMethod(model, "RMAppImpl", "statusUpdate", /*entry=*/true);
  AddMethod(model, "ContainerImpl", "handle", /*entry=*/true);
  AddMethod(model, "NodeListManager", "getNodeReport", /*entry=*/true);
  AddMethod(model, "NodesListManager", "handleNodeLost", /*entry=*/true);
  AddMethod(model, "RMAppAttemptImpl", "amFailed", /*entry=*/true);

  // ResourceManager internals.
  AddMethod(model, "AbstractYarnScheduler", "addNode");
  AddMethod(model, "AbstractYarnScheduler", "completeContainer");
  AddMethod(model, "AbstractYarnScheduler", "confirmContainer");
  AddMethod(model, "AbstractYarnScheduler", "getScheNode");
  AddMethod(model, "AbstractYarnScheduler", "allocateContainer");
  AddMethod(model, "CapacityScheduler", "allocateGuaranteed");
  AddMethod(model, "OpportunisticContainerAllocator", "allocateNodes");
  AddMethod(model, "NodesListManager", "refreshNodes");
  AddMethod(model, "RMAppAttemptImpl", "storeAttempt");
  AddMethod(model, "RMAppAttemptImpl", "attemptFailed");
  AddMethod(model, "RMContainerImpl", "processLaunched");

  AddCall(model, "ResourceTrackerService.registerNodeManager", "AbstractYarnScheduler.addNode");
  AddCall(model, "ClientRMService.submitApplication", "RMAppAttemptImpl.storeAttempt");
  AddCall(model, "RMAppAttemptImpl.amFailed", "RMAppAttemptImpl.attemptFailed");
  AddCall(model, "NodesListManager.handleNodeLost", "RMAppAttemptImpl.attemptFailed");
  AddCall(model, "RMAppAttemptImpl.attemptFailed", "RMAppAttemptImpl.storeAttempt");
  AddCall(model, "RMAppAttemptImpl.attemptFailed", "AbstractYarnScheduler.completeContainer");
  AddCall(model, "OpportunisticAMSProcessor.allocate",
          "OpportunisticContainerAllocator.allocateNodes");
  // Virtual dispatch through the scheduler interface resolves to the
  // capacity scheduler via the subtype edge declared in BuildTypes.
  AddCall(model, "OpportunisticAMSProcessor.allocate",
          "AbstractYarnScheduler.allocateGuaranteed", ctmodel::CallKind::kVirtual);
  // Both allocation paths funnel into the shared allocateContainer helper,
  // where the "Allocated container" statement is emitted.
  AddCall(model, "CapacityScheduler.allocateGuaranteed",
          "AbstractYarnScheduler.allocateContainer");
  AddCall(model, "OpportunisticContainerAllocator.allocateNodes",
          "AbstractYarnScheduler.allocateContainer");
  AddCall(model, "CapacityScheduler.containerCompleted",
          "AbstractYarnScheduler.completeContainer");
  AddCall(model, "RMAppImpl.finishApplication", "AbstractYarnScheduler.completeContainer");
  AddCall(model, "NodeListManager.getNodeReport", "AbstractYarnScheduler.getScheNode");
  AddCall(model, "AbstractYarnScheduler.completeContainer",
          "AbstractYarnScheduler.getScheNode");
  // Container launch is acknowledged on the scheduler event thread; attempt
  // storage confirms the master container from the state-store callback.
  AddCall(model, "OpportunisticAMSProcessor.allocate", "RMContainerImpl.processLaunched",
          ctmodel::CallKind::kAsync);
  AddCall(model, "RMAppAttemptImpl.storeAttempt", "AbstractYarnScheduler.confirmContainer",
          ctmodel::CallKind::kAsync);

  // ApplicationMaster / NodeManager side.
  AddMethod(model, "MRAppMaster", "serviceStart", /*entry=*/true);
  AddMethod(model, "MRAppMaster", "statusUpdate", /*entry=*/true);
  AddMethod(model, "MRAppMaster", "getNodeResource");
  AddMethod(model, "RMContainerAllocator", "assigned", /*entry=*/true);
  AddMethod(model, "RMContainerAllocator", "taskNodeLost", /*entry=*/true);
  AddMethod(model, "TaskAttemptListener", "assign");
  AddMethod(model, "TaskAttemptListener", "commitPending", /*entry=*/true);
  AddMethod(model, "TaskAttemptListener", "done", /*entry=*/true);
  AddMethod(model, "ContainerLaunch", "launchJvm", /*entry=*/true);
  AddMethod(model, "ContainerLaunch", "writeLaunchLog");
  AddMethod(model, "FileOutputCommitter", "writeOutput", /*entry=*/true);
  AddMethod(model, "TaskAttemptImpl", "initialize");

  AddCall(model, "RMContainerAllocator.assigned", "MRAppMaster.getNodeResource");
  // The allocator hands each container to the listener, which logs the task
  // assignment; the launch path mirrors the JVM record into the launch log.
  AddCall(model, "RMContainerAllocator.assigned", "TaskAttemptListener.assign");
  AddCall(model, "ContainerLaunch.launchJvm", "ContainerLaunch.writeLaunchLog");
  // The JVM bootstrap registers the task attempt from the child runner thread.
  AddCall(model, "ContainerLaunch.launchJvm", "TaskAttemptImpl.initialize",
          ctmodel::CallKind::kAsync);
}

void BuildIoPoints(YarnArtifacts* artifacts) {
  auto& model = artifacts->model;
  model.AddIoMethod({"org.apache.hadoop.fs.FSDataOutputStream", "write"});
  model.AddIoMethod({"org.apache.hadoop.fs.FSDataOutputStream", "flush"});
  model.AddIoMethod({"org.apache.hadoop.fs.FSDataOutputStream", "close"});
  model.AddIoMethod(
      {"yarn.server.resourcemanager.recovery.FileSystemRMStateStore", "writeApplicationState"});

  IoPointDecl launch_log;
  launch_log.io_class = "org.apache.hadoop.fs.FSDataOutputStream";
  launch_log.io_method = "write";
  launch_log.callsite = "ContainerLaunch.writeLaunchLog";
  launch_log.executable = true;
  artifacts->io.nm_launch_log_io = model.AddIoPoint(launch_log);

  IoPointDecl task_output;
  task_output.io_class = "org.apache.hadoop.fs.FSDataOutputStream";
  task_output.io_method = "write";
  task_output.callsite = "FileOutputCommitter.writeOutput";
  task_output.executable = true;
  artifacts->io.nm_task_output_io = model.AddIoPoint(task_output);

  IoPointDecl state_store;
  state_store.io_class = "yarn.server.resourcemanager.recovery.FileSystemRMStateStore";
  state_store.io_method = "writeApplicationState";
  state_store.callsite = "RMStateStore.storeApp";
  state_store.executable = false;
  artifacts->io.rm_state_store_io = model.AddIoPoint(state_store);
}

void BuildCatalog(ProgramModel* model) {
  ctmodel::CatalogSpec spec;
  spec.packages = {"org.apache.hadoop.yarn.server.resourcemanager",
                   "org.apache.hadoop.yarn.server.nodemanager",
                   "org.apache.hadoop.yarn.api.records",
                   "org.apache.hadoop.mapreduce.v2.app",
                   "org.apache.hadoop.yarn.client",
                   "org.apache.hadoop.yarn.util",
                   "org.apache.hadoop.yarn.server.webproxy"};
  spec.stems = {"Scheduler",  "Allocator", "Tracker",   "Monitor", "Dispatcher",
                "Context",    "Token",     "Resource",  "Localizer", "Aggregator",
                "Publisher",  "Router",    "Registry",  "Queue",     "Reservation"};
  spec.suffixes = {"Impl", "Service", "Event", "Handler", "Manager", "Util", "PBImpl", "Factory"};
  spec.num_classes = 540;
  spec.metainfo_field_types = {
      "yarn.api.records.NodeId", "yarn.api.records.ContainerId",
      "yarn.api.records.ApplicationId", "yarn.api.records.ApplicationAttemptId",
      "mapreduce.v2.api.records.TaskAttemptId"};
  spec.holders_per_metainfo_type = 4;
  spec.seed = 0xa5;
  PopulateCatalog(model, spec);
}

// Multi-crash hypotheses (§6 future work): crash at the first point, then
// crash again at the second during the recovery the first crash started.
// ctlint's static-pair-unreachable check keeps every pair armable.
void BuildMultiCrashPairs(YarnArtifacts* artifacts) {
  const YarnPoints& p = artifacts->points;
  artifacts->model.AddMultiCrashPair(
      {p.rm_container_progress_read, p.rm_container_finishing_read,
       "NM lost mid progress update, second NM lost while the attempt drains FINISHING "
       "(both YARN-8650 windows in one recovery)"});
  artifacts->model.AddMultiCrashPair(
      {p.rm_app_status_read, p.rm_release_attempt_read,
       "AM host lost under the status poller, replacement host lost during the release "
       "that follows (YARN-9194 then YARN-9248)"});
  artifacts->model.AddMultiCrashPair(
      {p.rm_register_node_write, p.rm_allocate_node_candidate,
       "node lost right after re-registration, second node lost on the opportunistic "
       "allocation path it was feeding (YARN-9193 window)"});
}

// Network-fault bug windows: partition the node a meta-info value resolves
// to (instead of crashing it), hold the cut past the liveness expiry, heal,
// and let the presumed-dead node's next heartbeat race the recovered state.
void BuildNetworkFaultWindows(YarnArtifacts* artifacts) {
  const YarnPoints& p = artifacts->points;
  // fd_timeout 1500 ms + sweep 250 ms put the LOST expiry at ~1750 ms into
  // the cut. 1900 ms heals just after it, so the NM's next 1000 ms-grid
  // heartbeat lands inside the removal's recovery window; a longer cut heals
  // after the sweep has settled and the heartbeat takes the benign resync.
  artifacts->model.AddNetworkFaultWindow(
      {p.rm_register_node_write, 1900, "YARN-9301",
       "NM partitioned at registration, expired as LOST, heals and heartbeats into the "
       "tracker without a resync"});
}

// Observability spans: stable names for the injection phases anchored at the
// declared fault windows. Campaign traces label each injection
// "inject:<name>"; ctlint's window-without-span-anchor check keeps every
// multi-crash point and network-window anchor covered.
void BuildSpans(YarnArtifacts* artifacts) {
  ProgramModel& model = artifacts->model;
  model.AddSpan({"rm.container-progress", "ContainerImpl.handle",
                 "container transition handling under NM progress updates"});
  model.AddSpan({"rm.app-status-poll", "RMAppImpl.statusUpdate",
                 "AM status poll against the app attempt"});
  model.AddSpan({"rm.release-containers", "SchedulerApplicationAttempt.releaseContainers",
                 "container release after an attempt retires"});
  model.AddSpan({"rm.register-node", "ResourceTrackerService.registerNodeManager",
                 "NM (re-)registration with the tracker"});
  model.AddSpan({"rm.allocate-opportunistic", "OpportunisticContainerAllocator.allocateNodes",
                 "opportunistic allocation over the candidate node set"});
  // Recovery-phase anchors of the remaining executable crash points: the
  // equivalence partition keys on the span name (falling back to the raw
  // frame), so every injectable anchor gets the model's vocabulary.
  model.AddSpan({"rm.complete-container", "AbstractYarnScheduler.completeContainer",
                 "scheduler-side container completion bookkeeping"});
  model.AddSpan({"rm.confirm-container", "AbstractYarnScheduler.confirmContainer",
                 "scheduler confirmation of an allocated container"});
  model.AddSpan({"rm.allocate-guaranteed", "CapacityScheduler.allocateGuaranteed",
                 "guaranteed-capacity allocation pass"});
  model.AddSpan({"rm.cluster-status", "ClientRMService.getClusterStatus",
                 "client-facing cluster status read"});
  model.AddSpan({"nm.launch-jvm", "ContainerLaunch.launchJvm",
                 "NM-side task JVM launch"});
  model.AddSpan({"am.task-status-update", "MRAppMaster.statusUpdate",
                 "AM ingest of a task attempt status report"});
  model.AddSpan({"rm.node-report", "NodeListManager.getNodeReport",
                 "node list lookup for a report request"});
  model.AddSpan({"rm.allocate-opportunistic-ams", "OpportunisticAMSProcessor.allocate",
                 "AMS-side opportunistic allocate call"});
  model.AddSpan({"rm.finish-application", "RMAppImpl.finishApplication",
                 "application finish transition on the RM"});
  model.AddSpan({"am.container-assigned", "RMContainerAllocator.assigned",
                 "AM-side record of a container assignment"});
  model.AddSpan({"rm.container-launched", "RMContainerImpl.processLaunched",
                 "RM container transition to LAUNCHED"});
  model.AddSpan({"am.task-attempt-init", "TaskAttemptImpl.initialize",
                 "task attempt initialization on the AM"});
  model.AddSpan({"am.commit-pending", "TaskAttemptListener.commitPending",
                 "task attempt commit-pending notification"});
  model.AddSpan({"am.task-done", "TaskAttemptListener.done",
                 "task attempt completion notification"});
  // Component span: the RM's periodic candidate-node-list refresh (the
  // YARN-9193 staleness window). Anchored at its own method decl so no
  // existing injection anchor changes; the component attribute feeds
  // `ctstat --top` dwell attribution.
  model.AddSpan({"rm.node-list-refresh", "NodesListManager.refreshNodes",
                 "periodic rebuild of the opportunistic allocator's candidate list",
                 "NodesListManager"});
}

// Workload-fuzzing grammar: the ops the coverage-guided generator may splice
// into a run. RPC ops name their declared handler method (the wire verb is
// the runtime registration); node ops name the class whose recovery logic
// the fault exercises — both are checked by ctlint's
// grammar-op-unknown-target.
void BuildGrammar(ProgramModel* model) {
  {
    ctmodel::GrammarOpDecl op;
    op.name = "yarn.submit-app";
    op.kind = ctmodel::GrammarOpKind::kRpc;
    op.target_method = "ClientRMService.submitApplication";
    op.rpc_verb = "submitApplication";
    op.target_prefix = "master";
    op.args = {{"tasks", "%MAG%"}};
    op.max_magnitude = 3;
    op.weight = 2;
    op.min_time_ms = 1000;
    op.max_time_ms = 9000;
    op.note = "a second application competing for the same node set";
    model->AddGrammarOp(op);
  }
  {
    ctmodel::GrammarOpDecl op;
    op.name = "yarn.cluster-status";
    op.kind = ctmodel::GrammarOpKind::kRpc;
    op.target_method = "ClientRMService.getClusterStatus";
    op.rpc_verb = "getClusterStatus";
    op.target_prefix = "master";
    op.weight = 2;
    op.min_time_ms = 500;
    op.max_time_ms = 15000;
    op.note = "status read racing node-map mutations";
    model->AddGrammarOp(op);
  }
  {
    ctmodel::GrammarOpDecl op;
    op.name = "yarn.node-report";
    op.kind = ctmodel::GrammarOpKind::kRpc;
    op.target_method = "NodeListManager.getNodeReport";
    op.rpc_verb = "getNodeReport";
    op.target_prefix = "master";
    op.args = {{"node", "%NODE%"}};
    op.arg_prefix = "node";
    op.weight = 2;
    op.min_time_ms = 500;
    op.max_time_ms = 15000;
    op.note = "node-list lookup against a possibly removed NM";
    model->AddGrammarOp(op);
  }
  {
    ctmodel::GrammarOpDecl op;
    op.name = "yarn.decommission-worker";
    op.kind = ctmodel::GrammarOpKind::kRpc;
    op.target_method = "NodesListManager.handleNodeLost";
    op.rpc_verb = "unregisterNode";
    op.target_prefix = "master";
    op.args = {{"node", "%NODE%"}};
    op.arg_prefix = "node";
    op.weight = 2;
    op.min_time_ms = 2000;
    op.max_time_ms = 12000;
    op.note = "administrative decommission through the failure detector";
    model->AddGrammarOp(op);
  }
  {
    ctmodel::GrammarOpDecl op;
    op.name = "yarn.kill-worker";
    op.kind = ctmodel::GrammarOpKind::kCrash;
    op.target_class = "NodesListManager";
    op.target_prefix = "node";
    op.weight = 3;
    op.min_time_ms = 2000;
    op.max_time_ms = 12000;
    op.note = "fail-stop an NM mid-job; exercises node-lost recovery";
    model->AddGrammarOp(op);
  }
  {
    ctmodel::GrammarOpDecl op;
    op.name = "yarn.stop-worker";
    op.kind = ctmodel::GrammarOpKind::kShutdown;
    op.target_class = "NodesListManager";
    op.target_prefix = "node";
    op.weight = 2;
    op.min_time_ms = 2000;
    op.max_time_ms = 12000;
    op.note = "graceful NM stop; heartbeats cease without a crash record";
    model->AddGrammarOp(op);
  }
}

YarnArtifacts* BuildArtifacts(YarnMode mode) {
  auto* artifacts = new YarnArtifacts();
  artifacts->mode = mode;
  artifacts->model = ProgramModel(mode == YarnMode::kLegacy ? "Hadoop2/Yarn(legacy)"
                                                            : "Hadoop2/Yarn");
  BuildTypes(&artifacts->model);
  BuildFields(&artifacts->model);
  BuildStatements(artifacts);
  BuildPoints(artifacts);
  BuildMethods(&artifacts->model);
  BuildIoPoints(artifacts);
  BuildCatalog(&artifacts->model);
  BuildMultiCrashPairs(artifacts);
  BuildNetworkFaultWindows(artifacts);
  BuildSpans(artifacts);
  BuildGrammar(&artifacts->model);
  return artifacts;
}

}  // namespace

const YarnArtifacts& GetYarnArtifacts(YarnMode mode) {
  static const YarnArtifacts* trunk = BuildArtifacts(YarnMode::kTrunk);
  static const YarnArtifacts* legacy = BuildArtifacts(YarnMode::kLegacy);
  return mode == YarnMode::kLegacy ? *legacy : *trunk;
}

std::string AppId(int job) { return "application_1550060164_" + std::to_string(1000 + job); }

std::string AppAttemptId(int job, int attempt) {
  return "appattempt_1550060164_" + std::to_string(1000 + job) + "_" +
         std::to_string(attempt);
}

std::string ContainerId(int job, int attempt, int container) {
  return "container_1550060164_" + std::to_string(1000 + job) + "_" + std::to_string(attempt) +
         "_" + std::to_string(container);
}

std::string TaskId(int job, int task) {
  return "task_1550060164_" + std::to_string(1000 + job) + "_m_" + std::to_string(task);
}

std::string TaskAttemptId(int job, int task, int retry) {
  return "attempt_1550060164_" + std::to_string(1000 + job) + "_m_" + std::to_string(task) + "_" +
         std::to_string(retry);
}

std::string JvmId(int job, int task, int retry) {
  return "jvm_1550060164_" + std::to_string(1000 + job) + "_m_" + std::to_string(task) + "_" +
         std::to_string(retry);
}

}  // namespace ctyarn
