// Mini-YARN NodeManager, hosting task JVMs and (on one worker) the MapReduce
// ApplicationMaster.
//
// Everything running on the machine — the NM daemon, the AM, task JVMs —
// dies together when the node crashes, which is exactly the granularity the
// paper's shutdown scripts and kill -9 operate at. The AM carries the
// MR-3858 commit protocol (Fig. 3) and the MR-7178 initialization window;
// task JVMs expose the launch-log and output-write IO points the IO-fault
// baseline instruments.
#ifndef SRC_SYSTEMS_YARN_NODE_MANAGER_H_
#define SRC_SYSTEMS_YARN_NODE_MANAGER_H_

#include <map>
#include <memory>
#include <set>
#include <string>

#include "src/sim/cluster.h"
#include "src/systems/yarn/job_state.h"
#include "src/systems/yarn/yarn_defs.h"

namespace ctyarn {

class NodeManager : public ctsim::Node {
 public:
  NodeManager(ctsim::Cluster* cluster, std::string id, std::string rm,
              const YarnArtifacts* artifacts, const YarnConfig* config, JobState* job);

  // AM-side task bookkeeping (public for tests).
  struct TaskRecord {
    int index = 0;
    int retry = 0;
    std::string state = "PENDING";  // PENDING/REQUESTED/LAUNCHED/INITIALIZING/
                                    // RUNNING/COMMIT_PENDING/DONE
    std::string node;
    std::string cid;
    std::string ta;
  };
  struct AmState {
    std::string app;
    std::string attempt;
    int num_tasks = 0;
    std::map<std::string, int> am_nodes;            // MRAppMaster.amNodes
    std::map<int, TaskRecord> tasks;
    std::map<int, std::string> commit;              // MRAppMaster.commit (Fig. 3)
    std::map<std::string, std::string> am_containers;  // MRAppMaster.amContainers
    std::map<std::string, int> task_progress;       // MRAppMaster.taskProgress
    int completed = 0;
    bool release_sent = false;
  };

  bool HostsAm() const { return am_ != nullptr; }
  const AmState* am() const { return am_.get(); }

 protected:
  void OnStart() override;
  void OnShutdown() override;
  void OnHandlerException(const std::string& context, const ctsim::SimException& e) override;

 private:
  // NM daemon handlers.
  void LaunchAm(const ctsim::Message& m);
  void LaunchContainer(const ctsim::Message& m);
  void CommitGranted(const ctsim::Message& m);
  // AM handlers (no-ops unless this NM hosts the AM).
  void AmRegistered(const ctsim::Message& m);
  void AmAllocated(const ctsim::Message& m);
  void AmCommitPending(const ctsim::Message& m);
  void AmDoneCommit(const ctsim::Message& m);
  void AmTaskNodeLost(const ctsim::Message& m);

  void SendAllocate(int task);
  void MaybeSendRelease();

  std::string rm_;
  const YarnArtifacts* artifacts_;
  const YarnConfig* config_;
  JobState* job_;

  std::unique_ptr<AmState> am_;
  // NM-side running task JVMs, keyed by task-attempt id.
  struct TaskJvm {
    int task = 0;
    std::string cid;
    std::string am_node;
  };
  std::map<std::string, TaskJvm> running_;
  std::set<std::string> launched_jvms_;  // JvmTaskRegistry.launchedJVMs
};

}  // namespace ctyarn

#endif  // SRC_SYSTEMS_YARN_NODE_MANAGER_H_
