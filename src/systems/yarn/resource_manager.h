// Mini-YARN ResourceManager.
//
// Carries the scheduler state (nodes, containers, applications, attempts),
// the liveness monitor, and the application/attempt/container state-machine
// handlers. The crash-recovery windows of the Table 5 YARN bugs live here;
// each is a real race between the LOST-recovery path and a handler that
// reads or writes meta-info without re-validating it (see the per-handler
// comments). The RM is the critical node: an uncaught NullPointerException
// aborts it and takes the cluster down (YARN-9164's failure mode).
#ifndef SRC_SYSTEMS_YARN_RESOURCE_MANAGER_H_
#define SRC_SYSTEMS_YARN_RESOURCE_MANAGER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/sim/cluster.h"
#include "src/sim/failure_detector.h"
#include "src/systems/yarn/job_state.h"
#include "src/systems/yarn/yarn_defs.h"

namespace ctyarn {

class ResourceManager : public ctsim::Node {
 public:
  ResourceManager(ctsim::Cluster* cluster, std::string id, const YarnArtifacts* artifacts,
                  const YarnConfig* config, JobState* job);

  // Scheduler state, exposed for tests.
  struct SchedulerNode {
    std::string node_id;
    int capacity = 4;
    int used = 0;
  };
  struct RMContainer {
    std::string id;
    std::string node;
    std::string attempt;
    int task = -1;          // -1 for the master container
    std::string state;      // ALLOCATED / RUNNING / COMPLETED / RELEASED / KILLED
    bool master = false;
  };
  struct RMAttempt {
    std::string id;
    std::string app;
    std::string node;   // node hosting the ApplicationMaster
    std::string state;  // NEW / RUNNING / FAILED / FINISHED
    bool initialized = false;
    std::string master_container;
    std::vector<std::string> containers;  // every container ever allocated to it
  };
  struct RMApp {
    std::string id;
    std::string current_attempt;
    std::string state;  // SUBMITTED / RUNNING / FINISHING / FINISHED / FAILED
    int attempt_count = 0;
    int num_tasks = 0;
    std::set<int> completed_tasks;
  };

  const std::map<std::string, SchedulerNode>& scheduler_nodes() const { return nodes_; }
  const std::map<std::string, RMContainer>& containers() const { return containers_; }
  const std::map<std::string, RMApp>& apps() const { return apps_; }
  const std::map<std::string, RMAttempt>& attempts() const { return attempts_; }
  const std::vector<std::string>& node_list() const { return node_list_; }

 protected:
  void OnStart() override;
  void OnHandlerException(const std::string& context, const ctsim::SimException& e) override;

 private:
  // RPC handlers.
  void RegisterNode(const ctsim::Message& m);
  void NodeHeartbeat(const ctsim::Message& m);
  void SubmitApplication(const ctsim::Message& m);
  void RegisterAm(const ctsim::Message& m);
  void Allocate(const ctsim::Message& m);
  void ContainerEvent(const ctsim::Message& m, const std::string& event, int point_id);
  void ContainerCompleted(const ctsim::Message& m);
  void ReleaseUnused(const ctsim::Message& m);
  void FinishApplication(const ctsim::Message& m);
  void GetClusterStatus(const ctsim::Message& m);
  void GetNodeReport(const ctsim::Message& m);
  void AmFailed(const ctsim::Message& m);

  // Recovery machinery.
  void HandleNodeLost(const std::string& node_id);
  void AttemptFailed(const std::string& attempt_id);
  void CreateAttempt(const std::string& app_id);

  // Internal (timer / async-dispatcher) paths.
  void ProcessLaunched(const std::string& container_id);   // YARN-9201 window
  void ConfirmContainer(const std::string& container_id);  // YARN-9165 window
  void StatusUpdate(const std::string& app_id,
                    const std::string& attempt_id);  // YARN-9194 window

  // Shared container-completion path holding the promoted getScheNode read of
  // Fig. 10 (YARN-9164). Throws NullPointerException when the node is gone.
  // node_id is taken by value: callers pass strings owned by containers_,
  // and the injection hook inside may run recovery that erases that entry.
  void CompleteOnNode(const std::string& container_id, std::string node_id);

  std::string NewContainerOn(const std::string& node_id, const std::string& attempt_id, int task,
                             bool master);

  const YarnArtifacts* artifacts_;
  const YarnConfig* config_;
  JobState* job_;

  std::map<std::string, SchedulerNode> nodes_;
  // Registration-order node candidate list; *not* cleaned on node loss — the
  // staleness YARN-9193 exploits.
  std::vector<std::string> node_list_;
  std::map<std::string, RMContainer> containers_;
  std::map<std::string, RMApp> apps_;
  std::map<std::string, RMAttempt> attempts_;
  // Nodes the liveness monitor declared LOST, by removal time. A heartbeat
  // from one of these can only arrive through a healed partition (crashed
  // nodes never speak again, decommissioned ones unregister first) — the
  // seeded message race network-fault mode targets. The race is live only
  // while the removal's recovery (container sweep, reallocation) is still in
  // flight; a later stale heartbeat takes the benign resync path. Either way
  // the tombstone is cleared on first contact.
  std::map<std::string, ctsim::Time> removed_nodes_;
  std::unique_ptr<ctsim::FailureDetector> fd_;
  int next_container_ = 0;
  int job_counter_ = 0;
  size_t opportunistic_rr_ = 0;
};

}  // namespace ctyarn

#endif  // SRC_SYSTEMS_YARN_RESOURCE_MANAGER_H_
