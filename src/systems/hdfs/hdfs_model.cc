// Static program model for mini-HDFS (types, fields, access points, logging
// statements, IO points, catalog).
#include "src/systems/hdfs/hdfs_defs.h"

#include "src/logging/statement.h"
#include "src/model/catalog.h"

namespace cthdfs {

namespace {

using ctmodel::AccessKind;
using ctmodel::AccessPointDecl;
using ctmodel::FieldDecl;
using ctmodel::IoPointDecl;
using ctmodel::LogBinding;
using ctmodel::ProgramModel;
using ctmodel::TypeDecl;

HdfsArtifacts* Build() {
  auto* artifacts = new HdfsArtifacts();
  ProgramModel& model = artifacts->model;
  ctmodel::AddBaseTypes(&model);

  auto add_type = [&](const std::string& name, const std::string& super = "",
                      std::vector<std::string> elements = {}, bool closeable = false) {
    TypeDecl type;
    type.name = name;
    type.supertype = super;
    type.element_types = std::move(elements);
    type.closeable = closeable;
    model.AddType(type);
  };
  add_type("hdfs.protocol.DatanodeInfo");
  add_type("hdfs.protocol.DatanodeID", "hdfs.protocol.DatanodeInfo");
  add_type("hdfs.server.protocol.DatanodeRegistration", "hdfs.protocol.DatanodeInfo");
  add_type("hdfs.server.datanode.BPOfferService");
  add_type("hdfs.protocol.Block");
  add_type("hdfs.server.namenode.INodeFile");
  add_type("HashMap<DatanodeInfo,DatanodeDescriptor>", "", {"hdfs.protocol.DatanodeInfo"});
  add_type("HashMap<Block,DatanodeInfo>", "",
           {"hdfs.protocol.Block", "hdfs.protocol.DatanodeInfo"});
  add_type("HashMap<String,INodeFile>", "",
           {"java.lang.String", "hdfs.server.namenode.INodeFile"});
  add_type("hdfs.server.namenode.EditLogOutputStream", "", {}, /*closeable=*/true);
  add_type("hdfs.server.datanode.BlockReceiver", "", {}, /*closeable=*/true);

  auto add_field = [&](const std::string& clazz, const std::string& name, const std::string& type,
                       bool ctor_only = false) {
    FieldDecl field;
    field.clazz = clazz;
    field.name = name;
    field.type = type;
    field.set_only_in_constructor = ctor_only;
    model.AddField(field);
  };
  add_field("DatanodeManager", "datanodeMap", "HashMap<DatanodeInfo,DatanodeDescriptor>");
  add_field("BlockManager", "blockLocations", "HashMap<Block,DatanodeInfo>");
  add_field("FSDirectory", "inodeMap", "HashMap<String,INodeFile>");
  add_field("BPOfferService", "bpRegistration", "hdfs.server.protocol.DatanodeRegistration");
  add_field("hdfs.server.namenode.INodeFile", "name", "java.io.File");

  auto add_point = [&](const std::string& field, AccessKind kind, const std::string& clazz,
                       const std::string& method, int line, const std::string& op = "",
                       bool sanity = false) {
    AccessPointDecl point;
    point.field_id = field;
    point.kind = kind;
    point.clazz = clazz;
    point.method = method;
    point.line = line;
    point.collection_op = op;
    point.sanity_checked = sanity;
    point.executable = true;
    return model.AddAccessPoint(point);
  };
  auto& points = artifacts->points;
  points.nn_register_dn_write = add_point("DatanodeManager.datanodeMap", AccessKind::kWrite,
                                          "DatanodeManager", "registerDatanode", 152, "put");
  points.nn_pick_target_read = add_point("DatanodeManager.datanodeMap", AccessKind::kRead,
                                         "DatanodeManager", "getDatanode", 310, "get");
  points.nn_block_location_read = add_point("BlockManager.blockLocations", AccessKind::kRead,
                                            "DatanodeManager", "getDatanode", 334, "get");
  points.nn_fs_status_read = add_point("FSDirectory.inodeMap", AccessKind::kRead, "FSNamesystem",
                                       "getFsStatus", 88, "get");
  points.dn_block_report_read = add_point("BPOfferService.bpRegistration", AccessKind::kRead,
                                          "BPOfferService", "blockReport", 41);
  points.nn_journal_replay_read = add_point("BlockManager.blockLocations", AccessKind::kRead,
                                            "FSEditLogLoader", "replay", 17, "values");

  // Declared call structure. NameNode RPCs and the DataNode heartbeat timer
  // are stack roots; the two getDatanode contexts come from its two callers.
  auto add_method = [&](const std::string& clazz, const std::string& name, bool entry = false) {
    ctmodel::MethodDecl method;
    method.clazz = clazz;
    method.name = name;
    method.entry_point = entry;
    model.AddMethod(method);
  };
  auto add_call = [&](const std::string& caller, const std::string& callee,
                      ctmodel::CallKind kind = ctmodel::CallKind::kStatic) {
    model.AddCallEdge({caller, callee, kind});
  };
  add_method("DatanodeManager", "registerDatanode", /*entry=*/true);
  add_method("FSNamesystem", "startFile", /*entry=*/true);
  add_method("FSNamesystem", "getBlockLocations", /*entry=*/true);
  add_method("FSNamesystem", "getFsStatus", /*entry=*/true);
  add_method("DatanodeManager", "removeDeadDatanode", /*entry=*/true);
  add_method("FSEditLogLoader", "replay", /*entry=*/true);
  add_method("BPOfferService", "blockReport", /*entry=*/true);
  add_method("BPOfferService", "stop", /*entry=*/true);
  add_method("BlockReceiver", "receivePacket", /*entry=*/true);
  add_method("FSNamesystem", "completeFile", /*entry=*/true);
  add_method("FSNamesystem", "startActiveServices", /*entry=*/true);
  add_method("FSNamesystem", "haHeartbeat");
  add_method("BPOfferService", "register", /*entry=*/true);
  add_method("DatanodeManager", "getDatanode");
  add_method("BlockManager", "addBlock");
  add_method("BlockManager", "blockReceived");
  add_method("FSEditLog", "logSync");
  add_call("FSNamesystem.startFile", "DatanodeManager.getDatanode");
  add_call("FSNamesystem.getBlockLocations", "DatanodeManager.getDatanode");
  // startFile allocates the first block; incremental block reports land in
  // the block manager; both namespace mutations sync the edit log.
  add_call("FSNamesystem.startFile", "BlockManager.addBlock");
  add_call("BPOfferService.blockReport", "BlockManager.blockReceived");
  add_call("FSNamesystem.startFile", "FSEditLog.logSync");
  add_call("FSNamesystem.completeFile", "FSEditLog.logSync");

  auto& registry = ctlog::StatementRegistry::Instance();
  auto& stmts = artifacts->stmts;
  auto bind = [&](int id, std::vector<ctmodel::LogArg> args) {
    LogBinding binding;
    binding.statement_id = id;
    binding.args = std::move(args);
    model.BindLog(binding);
  };
  stmts.dn_registered = registry.Register(ctlog::Level::kInfo, "DataNode from {} registered as {}",
                                          "DatanodeManager.registerDatanode");
  bind(stmts.dn_registered,
       {{"java.lang.String", ""}, {"hdfs.protocol.DatanodeInfo", "DatanodeManager.datanodeMap"}});
  stmts.block_allocated =
      registry.Register(ctlog::Level::kInfo, "Allocated block {} of file {} on datanode {}",
                        "BlockManager.addBlock");
  bind(stmts.block_allocated, {{"hdfs.protocol.Block", ""},
                               {"java.io.File", "hdfs.server.namenode.INodeFile.name"},
                               {"hdfs.protocol.DatanodeInfo", ""}});
  stmts.block_received = registry.Register(ctlog::Level::kInfo, "Received block {} from {}",
                                           "BlockManager.blockReceived");
  bind(stmts.block_received,
       {{"hdfs.protocol.Block", ""}, {"hdfs.protocol.DatanodeInfo", ""}});
  stmts.bp_registered = registry.Register(
      ctlog::Level::kInfo, "Block pool {} on datanode {} registered", "BPOfferService.register");
  bind(stmts.bp_registered, {{"hdfs.server.datanode.BPOfferService", ""},
                             {"hdfs.protocol.DatanodeInfo", ""}});
  stmts.file_complete =
      registry.Register(ctlog::Level::kInfo, "File {} is complete", "FSNamesystem.completeFile");
  bind(stmts.file_complete, {{"java.io.File", "hdfs.server.namenode.INodeFile.name"}});
  stmts.nn_active = registry.Register(ctlog::Level::kInfo, "NameNode {} transitioned to active",
                                      "FSNamesystem.startActiveServices");
  bind(stmts.nn_active, {{"hdfs.protocol.DatanodeInfo", ""}});
  stmts.dn_removed = registry.Register(ctlog::Level::kWarn, "Removing dead datanode {}",
                                       "DatanodeManager.removeDeadDatanode");
  bind(stmts.dn_removed, {{"hdfs.protocol.DatanodeInfo", ""}});

  model.AddIoMethod({"hdfs.server.namenode.EditLogOutputStream", "write"});
  model.AddIoMethod({"hdfs.server.namenode.EditLogOutputStream", "flush"});
  model.AddIoMethod({"hdfs.server.datanode.BlockReceiver", "writeBlock"});
  {
    IoPointDecl editlog;
    editlog.io_class = "hdfs.server.namenode.EditLogOutputStream";
    editlog.io_method = "write";
    editlog.callsite = "FSEditLog.logSync";
    editlog.executable = true;
    artifacts->io.nn_editlog_io = model.AddIoPoint(editlog);
    IoPointDecl block_write;
    block_write.io_class = "hdfs.server.datanode.BlockReceiver";
    block_write.io_method = "writeBlock";
    block_write.callsite = "BlockReceiver.receivePacket";
    block_write.executable = true;
    artifacts->io.dn_block_write_io = model.AddIoPoint(block_write);
  }

  ctmodel::CatalogSpec spec;
  spec.packages = {"org.apache.hadoop.hdfs.server.namenode", "org.apache.hadoop.hdfs.server.datanode",
                   "org.apache.hadoop.hdfs.protocol", "org.apache.hadoop.hdfs.server.blockmanagement",
                   "org.apache.hadoop.hdfs.qjournal"};
  spec.stems = {"Block",   "Lease",  "Snapshot", "Checkpoint", "Journal", "Storage",
                "Replica", "Decom",  "Balancer", "Quota",      "Cache",   "Xceiver"};
  spec.suffixes = {"Manager", "Impl", "Service", "Monitor", "Handler", "Util", "Context"};
  spec.num_classes = 360;
  spec.metainfo_field_types = {"hdfs.protocol.DatanodeInfo", "hdfs.protocol.Block"};
  spec.holders_per_metainfo_type = 3;
  spec.seed = 0xd5;
  ctmodel::PopulateCatalog(&model, spec);

  // Multi-crash hypotheses: a second DataNode dies while the NameNode is
  // still recovering from the first loss (ctlint keeps each pair armable).
  model.AddMultiCrashPair(
      {artifacts->points.nn_pick_target_read, artifacts->points.nn_block_location_read,
       "DN lost under block placement, second DN lost while a reader resolves the "
       "relocated block (both HDFS-14216 paths in one recovery)"});
  model.AddMultiCrashPair(
      {artifacts->points.nn_register_dn_write, artifacts->points.dn_block_report_read,
       "DN lost right after registering, replacement DN stopped mid block report "
       "(HDFS-14372 window during re-replication)"});

  // Network-fault bug window: partition the DN whose id the registration
  // write resolves to, hold the cut past the 1500 ms liveness timeout
  // (expiry at ~1750 ms with the 250 ms sweep), and heal at 1900 ms so the
  // DN's next 800 ms-grid heartbeat hits removeDeadDatanode's tombstone
  // while its recovery is still in flight.
  model.AddNetworkFaultWindow(
      {artifacts->points.nn_register_dn_write, 1900, "HDFS-15113",
       "DN partitioned at registration, expired as dead, heals and heartbeats into the "
       "DatanodeManager without re-registering"});

  // Observability spans for the declared fault windows (campaign traces
  // label the injections "inject:<name>"; ctlint keeps the set complete).
  model.AddSpan({"nn.datanode-lookup", "DatanodeManager.getDatanode",
                 "DN descriptor lookup on the block-placement and read paths"});
  model.AddSpan({"nn.register-datanode", "DatanodeManager.registerDatanode",
                 "DN (re-)registration with the NameNode"});
  // Component attribute on the block-report span: `ctstat --top` attributes
  // per-sweep virtual-time dwell to the DatanodeManager role, whose state
  // the report feeds (the ROADMAP's "HDFS block-report handling" hot path).
  model.AddSpan({"dn.block-report", "BPOfferService.blockReport",
                 "full block report from a DN to the NameNode", "DatanodeManager"});
  // Recovery-phase anchors of the remaining executable crash points: the
  // equivalence partition keys on the span name.
  model.AddSpan({"nn.edit-replay", "FSEditLogLoader.replay",
                 "edit-log replay during namespace recovery"});
  model.AddSpan({"nn.fs-status", "FSNamesystem.getFsStatus",
                 "filesystem status read against namespace state"});
  // Component span on its own anchor method (so no existing injection
  // anchor changes): the active NameNode's HA heartbeat sweep.
  model.AddSpan({"nn.ha-heartbeat", "FSNamesystem.haHeartbeat",
                 "active NameNode heartbeat round toward the standby", "FSNamesystem"});

  // Workload-fuzzing grammar: RPC ops name their declared handler, node ops
  // the class whose recovery logic the fault exercises (ctlint's
  // grammar-op-unknown-target keeps both honest).
  {
    ctmodel::GrammarOpDecl op;
    op.name = "hdfs.create-file";
    op.kind = ctmodel::GrammarOpKind::kRpc;
    op.target_method = "FSNamesystem.startFile";
    op.rpc_verb = "createFile";
    op.target_prefix = "namenode";
    op.args = {{"file", "/fuzz/io_data/extra_%MAG%"}, {"index", "%MAG%"}};
    op.max_magnitude = 4;
    op.weight = 2;
    op.min_time_ms = 4000;
    op.max_time_ms = 12000;
    op.note = "extra write competing with TestDFSIO for block placement";
    model.AddGrammarOp(op);
  }
  {
    ctmodel::GrammarOpDecl op;
    op.name = "hdfs.locate-blocks";
    op.kind = ctmodel::GrammarOpKind::kRpc;
    op.target_method = "FSNamesystem.getBlockLocations";
    op.rpc_verb = "getBlockLocations";
    op.target_prefix = "namenode";
    op.args = {{"file", "/fuzz/io_data/extra_%MAG%"}};
    op.max_magnitude = 4;
    op.weight = 1;
    op.min_time_ms = 5000;
    op.max_time_ms = 14000;
    op.note = "read-path location lookup against unrevalidated replicas";
    model.AddGrammarOp(op);
  }
  {
    ctmodel::GrammarOpDecl op;
    op.name = "hdfs.fs-status";
    op.kind = ctmodel::GrammarOpKind::kRpc;
    op.target_method = "FSNamesystem.getFsStatus";
    op.rpc_verb = "getFsStatus";
    op.target_prefix = "namenode";
    op.weight = 2;
    op.min_time_ms = 1000;
    op.max_time_ms = 14000;
    op.note = "status scan over the inode table";
    model.AddGrammarOp(op);
  }
  {
    ctmodel::GrammarOpDecl op;
    op.name = "hdfs.decommission-dn";
    op.kind = ctmodel::GrammarOpKind::kRpc;
    op.target_method = "DatanodeManager.removeDeadDatanode";
    op.rpc_verb = "unregisterDatanode";
    op.target_prefix = "namenode";
    op.args = {{"dn", "%NODE%"}};
    op.arg_prefix = "dnode";
    op.weight = 2;
    op.min_time_ms = 3000;
    op.max_time_ms = 10000;
    op.note = "administrative decommission through the failure detector";
    model.AddGrammarOp(op);
  }
  {
    ctmodel::GrammarOpDecl op;
    op.name = "hdfs.kill-dn";
    op.kind = ctmodel::GrammarOpKind::kCrash;
    op.target_class = "DatanodeManager";
    op.target_prefix = "dnode";
    op.weight = 3;
    op.min_time_ms = 3000;
    op.max_time_ms = 10000;
    op.note = "fail-stop a DN mid-write; exercises dead-node removal";
    model.AddGrammarOp(op);
  }
  {
    ctmodel::GrammarOpDecl op;
    op.name = "hdfs.kill-namenode";
    op.kind = ctmodel::GrammarOpKind::kCrash;
    op.target_class = "FSNamesystem";
    op.target_prefix = "namenode";
    op.weight = 1;
    op.min_time_ms = 5000;
    op.max_time_ms = 9000;
    op.note = "fail-stop a NameNode; the standby promotes and replays edits";
    model.AddGrammarOp(op);
  }
  return artifacts;
}

}  // namespace

const HdfsArtifacts& GetHdfsArtifacts() {
  static const HdfsArtifacts* artifacts = Build();
  return *artifacts;
}

std::string BlockId(int file, int index) {
  return "blk_107437418" + std::to_string(file) + std::to_string(index);
}

std::string FileName(int file) { return "/benchmarks/TestDFSIO/io_data/test_io_" + std::to_string(file); }

}  // namespace cthdfs
