// Shared definitions for the mini-HDFS system under test.
//
// Mini-HDFS models an HA deployment: an active and a standby NameNode
// sharing an edit-log journal (the QJM stand-in), DataNodes running the
// BPOfferService register/heartbeat/block-report loop, and a client driving
// the TestDFSIO+curl workload (write files of replicated blocks, read them
// back, query FS status over the web path).
//
// Seeded windows: HDFS-14216 (x2) — the block placement and block location
// paths read a DatanodeInfo without revalidating liveness; HDFS-14372 — a
// DataNode stopped before its block-pool registration completes aborts in
// the BPOfferService stop path. The active NameNode's edit-log write is the
// IO point whose crash the standby *tolerates* by truncating the corrupt
// tail (the LogHeaderCorruptException narrative of §4.2.2).
#ifndef SRC_SYSTEMS_HDFS_HDFS_DEFS_H_
#define SRC_SYSTEMS_HDFS_HDFS_DEFS_H_

#include <string>

#include "src/model/program_model.h"

namespace cthdfs {

struct HdfsConfig {
  int num_datanodes = 3;
  int replication = 2;
  int blocks_per_file = 2;
  uint64_t heartbeat_ms = 800;
  uint64_t fd_timeout_ms = 1500;
  uint64_t fd_sweep_ms = 250;
  uint64_t register_ack_delay_ms = 2500;  // namesystem lock latency (HDFS-14372 window)
  uint64_t block_store_ms = 300;
  uint64_t block_report_ms = 1000;
  uint64_t nn_peer_heartbeat_ms = 400;
  uint64_t client_op_timeout_ms = 4000;
};

struct HdfsStatements {
  int dn_registered = -1;    // "DataNode from {} registered as {}"
  int block_allocated = -1;  // "Allocated block {} of file {} on datanode {}"
  int block_received = -1;   // "Received block {} from {}"
  int bp_registered = -1;    // "Block pool {} on datanode {} registered"
  int file_complete = -1;    // "File {} is complete"
  int nn_active = -1;        // "NameNode {} transitioned to active"
  int dn_removed = -1;       // "Removing dead datanode {}"
};

struct HdfsPoints {
  int nn_register_dn_write = -1;   // benign post-write on the datanode map
  int nn_pick_target_read = -1;    // HDFS-14216 pre-read (write path)
  int nn_block_location_read = -1;  // HDFS-14216 pre-read (read path)
  int nn_fs_status_read = -1;      // benign pre-read (curl, File meta-info)
  int dn_block_report_read = -1;   // HDFS-14372 pre-read (BPOfferService)
  int nn_journal_replay_read = -1;  // benign pre-read during failover
};

struct HdfsIoPoints {
  int nn_editlog_io = -1;   // active NN writes an edit-log record
  int dn_block_write_io = -1;  // DataNode stores a block replica
};

struct HdfsArtifacts {
  ctmodel::ProgramModel model{"HDFS"};
  HdfsStatements stmts;
  HdfsPoints points;
  HdfsIoPoints io;
};

const HdfsArtifacts& GetHdfsArtifacts();

std::string BlockId(int file, int index);
std::string FileName(int file);

}  // namespace cthdfs

#endif  // SRC_SYSTEMS_HDFS_HDFS_DEFS_H_
