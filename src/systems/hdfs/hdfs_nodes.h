// Mini-HDFS nodes: HA NameNodes, DataNodes, and the TestDFSIO client.
#ifndef SRC_SYSTEMS_HDFS_HDFS_NODES_H_
#define SRC_SYSTEMS_HDFS_HDFS_NODES_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/sim/cluster.h"
#include "src/sim/failure_detector.h"
#include "src/systems/hdfs/hdfs_defs.h"

namespace cthdfs {

// Shared edit-log journal (the QJM stand-in): the active NameNode appends,
// the standby replays on failover. mid_write set across the write models the
// torn record a crash leaves behind.
struct Journal {
  int records = 0;
  bool mid_write = false;
};

struct HdfsJobState {
  bool done = false;
  bool failed = false;
};

class NameNode : public ctsim::Node {
 public:
  NameNode(ctsim::Cluster* cluster, std::string id, std::string peer, bool active,
           const HdfsArtifacts* artifacts, const HdfsConfig* config, Journal* journal);

  bool active() const { return active_; }
  const std::map<std::string, bool>& datanodes() const { return datanodes_; }

 protected:
  void OnStart() override;
  void OnHandlerException(const std::string& context, const ctsim::SimException& e) override;

 private:
  void RegisterDatanode(const ctsim::Message& m);
  void DnHeartbeat(const ctsim::Message& m);
  void CreateFile(const ctsim::Message& m);
  void GetBlockLocations(const ctsim::Message& m);
  void GetFsStatus(const ctsim::Message& m);
  void HandleDatanodeLost(const std::string& dn);
  void Promote();

  // Reads a datanode entry on the request path without revalidation — the
  // HDFS-14216 window. Throws when the node vanished during the wait.
  void CheckDatanodeLive(const std::string& dn, int point_id);

  std::string peer_;
  bool active_;
  const HdfsArtifacts* artifacts_;
  const HdfsConfig* config_;
  Journal* journal_;

  std::map<std::string, bool> datanodes_;  // DatanodeManager.datanodeMap
  // Datanodes removeDeadDatanode already expired, by removal time. A
  // heartbeat from one can only arrive through a healed partition (dead DNs
  // never speak again, decommissioned ones unregister first) — the seeded
  // message race of network-fault mode. The race is live only while the
  // removal's re-replication bookkeeping is still in flight; later stale
  // heartbeats take the benign re-registration path. Either way the
  // tombstone is cleared on first contact.
  std::map<std::string, ctsim::Time> removed_datanodes_;
  std::map<std::string, std::vector<std::string>> block_locations_;
  struct FileRecord {
    std::vector<std::string> blocks;
    int pending = 0;
    std::string client;
  };
  std::map<std::string, FileRecord> files_;  // FSDirectory.inodeMap
  std::unique_ptr<ctsim::FailureDetector> dn_fd_;
  std::unique_ptr<ctsim::FailureDetector> peer_fd_;
  size_t placement_rr_ = 0;
};

class DataNode : public ctsim::Node {
 public:
  DataNode(ctsim::Cluster* cluster, std::string id, std::string nn, const HdfsArtifacts* artifacts,
           const HdfsConfig* config);

  bool registered() const { return registered_; }

 protected:
  void OnStart() override;
  void OnShutdown() override;

 private:
  void BlockReport();

  std::string current_nn_;
  const HdfsArtifacts* artifacts_;
  const HdfsConfig* config_;
  bool registered_ = false;  // BPOfferService.bpRegistration received
  std::set<std::string> stored_blocks_;
};

class HdfsClient : public ctsim::Node {
 public:
  HdfsClient(ctsim::Cluster* cluster, std::string id, std::string nn, int num_files,
             const HdfsArtifacts* artifacts, const HdfsConfig* config, HdfsJobState* job);

  void StartWorkload();

 private:
  void NextOp();
  void RetryCheck(int op_serial);

  std::string current_nn_;
  int num_files_;
  const HdfsArtifacts* artifacts_;
  const HdfsConfig* config_;
  HdfsJobState* job_;

  int current_file_ = 0;
  enum class Phase { kWrite, kRead, kDone } phase_ = Phase::kWrite;
  int op_serial_ = 0;
  int attempts_ = 0;
};

}  // namespace cthdfs

#endif  // SRC_SYSTEMS_HDFS_HDFS_NODES_H_
