#include "src/systems/hdfs/hdfs_nodes.h"

#include "src/runtime/component_span.h"
#include "src/runtime/tracer.h"
#include "src/sim/exception.h"

namespace cthdfs {

using ctsim::Message;
using ctsim::SimException;

// How long a removal's recovery actions stay in flight — the width of the
// seeded message-race window. A stale heartbeat landing inside it hits the
// race; a later one takes the benign resync path. Sub-second-scale on
// purpose: the paper's observation is that recovery windows are narrow,
// which is why blind fault injection rarely lands in them.
constexpr ctsim::Time kRemovalRaceWindowMs = 1200;

// --- NameNode ---------------------------------------------------------------

NameNode::NameNode(ctsim::Cluster* cluster, std::string id, std::string peer, bool active,
                   const HdfsArtifacts* artifacts, const HdfsConfig* config, Journal* journal)
    : Node(cluster, std::move(id)),
      peer_(std::move(peer)),
      active_(active),
      artifacts_(artifacts),
      config_(config),
      journal_(journal) {
  dn_fd_ = std::make_unique<ctsim::FailureDetector>(
      this, config_->fd_timeout_ms, config_->fd_sweep_ms,
      [this](const std::string& dn) { HandleDatanodeLost(dn); });
  peer_fd_ = std::make_unique<ctsim::FailureDetector>(
      this, config_->fd_timeout_ms, config_->fd_sweep_ms,
      [this](const std::string&) { Promote(); });

  Handle("registerDatanode", [this](const Message& m) { RegisterDatanode(m); });
  Handle("dnHeartbeat", [this](const Message& m) { DnHeartbeat(m); });
  Handle("unregisterDatanode", [this](const Message& m) { dn_fd_->NotifyLeft(m.Arg("dn")); });
  Handle("createFile", [this](const Message& m) { CreateFile(m); });
  Handle("getBlockLocations", [this](const Message& m) { GetBlockLocations(m); });
  Handle("getFsStatus", [this](const Message& m) { GetFsStatus(m); });
  Handle("nnHeartbeat", [this](const Message& m) { peer_fd_->Heartbeat(m.from); });
  Handle("blockReceived", [this](const Message& m) {
    log().Log(artifacts_->stmts.block_received, {m.Arg("blk"), m.Arg("dn")});
    auto it = files_.find(m.Arg("file"));
    if (it == files_.end() || it->second.pending <= 0) {
      return;
    }
    if (--it->second.pending == 0) {
      log().Log(artifacts_->stmts.file_complete, {m.Arg("file")});
      Send(it->second.client, "fileComplete", {{"file", m.Arg("file")}});
    }
  });
}

void NameNode::OnStart() {
  dn_fd_->Start();
  if (active_) {
    Every(config_->nn_peer_heartbeat_ms, [this] {
      ctrt::ComponentSpan sweep(&this->cluster().loop(), "nn.ha-heartbeat", "FSNamesystem");
      if (active_) {
        Send(peer_, "nnHeartbeat", {});
      }
    });
  } else {
    peer_fd_->Start();
    peer_fd_->Heartbeat(peer_);
  }
}

void NameNode::OnHandlerException(const std::string& context, const SimException& e) {
  // Request-path failures are returned to the client; the namesystem itself
  // survives (the HDFS-14216 symptom is a failed request, not a crash).
  (void)context;
  (void)e;
}

void NameNode::RegisterDatanode(const Message& m) {
  CT_FRAME("DatanodeManager.registerDatanode");
  if (!active_) {
    return;
  }
  const std::string dn = m.Arg("dn");
  datanodes_[dn] = true;
  CT_POST_WRITE(artifacts_->points.nn_register_dn_write, dn);
  log().Log(artifacts_->stmts.dn_registered, {m.Arg("host"), dn});
  dn_fd_->Heartbeat(dn);
  // Registration ack is delayed by namesystem-lock latency: the window in
  // which a DataNode stopped early has never completed its block-pool
  // registration (HDFS-14372).
  After(config_->register_ack_delay_ms,
        [this, dn] { Send(dn, "registerAck", {{"bp", "BP-1396243"}}); });
}

void NameNode::CheckDatanodeLive(const std::string& dn, int point_id) {
  CT_FRAME("DatanodeManager.getDatanode");
  CT_PRE_READ(point_id, dn);
  if (datanodes_.find(dn) == datanodes_.end()) {
    throw SimException("NullPointerException", "Request fails due to removed node " + dn);
  }
}

void NameNode::CreateFile(const Message& m) {
  CT_FRAME("FSNamesystem.startFile");
  if (!active_) {
    return;
  }
  const std::string file = m.Arg("file");
  if (datanodes_.size() < static_cast<size_t>(config_->replication)) {
    return;  // Not enough datanodes yet; the client retries.
  }
  FileRecord record;
  record.client = m.from;
  std::vector<std::string> dns;
  for (const auto& [dn, alive] : datanodes_) {
    dns.push_back(dn);
  }
  for (int b = 0; b < config_->blocks_per_file; ++b) {
    std::string blk = BlockId(std::stoi(m.Arg("index")), b);
    // Edit-log record: torn if the active NameNode dies inside the write.
    journal_->mid_write = true;
    CT_IO_BEGIN(artifacts_->io.nn_editlog_io);
    CT_IO_END(artifacts_->io.nn_editlog_io);
    journal_->records += 1;
    journal_->mid_write = false;

    // Block placement: round-robin replicas, read without revalidation —
    // the HDFS-14216 write-path window.
    std::vector<std::string> targets;
    for (int r = 0; r < config_->replication; ++r) {
      const std::string dn = dns[(placement_rr_ + r) % dns.size()];
      CheckDatanodeLive(dn, artifacts_->points.nn_pick_target_read);
      targets.push_back(dn);
      log().Log(artifacts_->stmts.block_allocated, {blk, file, dn});
    }
    placement_rr_ += 1;
    block_locations_[blk] = targets;
    record.blocks.push_back(blk);
    record.pending += 1;
    Send(targets[0], "writeBlock",
         {{"blk", blk}, {"mirror", targets.size() > 1 ? targets[1] : ""}, {"file", file}});
  }
  files_[file] = record;
}

void NameNode::GetBlockLocations(const Message& m) {
  CT_FRAME("FSNamesystem.getBlockLocations");
  if (!active_) {
    return;
  }
  auto it = files_.find(m.Arg("file"));
  if (it == files_.end() || it->second.blocks.empty()) {
    return;
  }
  const std::string& blk = it->second.blocks.front();
  auto locations = block_locations_.find(blk);
  if (locations == block_locations_.end() || locations->second.empty()) {
    return;
  }
  // HDFS-14216 read-path window: the chosen replica holder is not
  // revalidated against the live set.
  const std::string dn = locations->second.front();
  CheckDatanodeLive(dn, artifacts_->points.nn_block_location_read);
  Send(m.from, "fileLocations", {{"file", m.Arg("file")}, {"blk", blk}, {"dn", dn}});
}

void NameNode::GetFsStatus(const Message& m) {
  CT_FRAME("FSNamesystem.getFsStatus");
  int complete = 0;
  for (const auto& [file, record] : files_) {
    // Benign armed point: inodes survive datanode recovery.
    CT_PRE_READ(artifacts_->points.nn_fs_status_read, file);
    if (files_.find(file) != files_.end()) {
      ++complete;
    }
  }
  Send(m.from, "fsStatus", {{"files", std::to_string(complete)}});
}

void NameNode::DnHeartbeat(const Message& m) {
  const std::string& dn = m.Arg("dn");
  auto removed = removed_datanodes_.find(dn);
  if (removed != removed_datanodes_.end()) {
    const bool recovering =
        cluster().loop().Now() - removed->second <= kRemovalRaceWindowMs;
    removed_datanodes_.erase(removed);
    if (recovering) {
      // The heartbeat handler applies the report against dead-node state
      // while the removal is still being re-replicated, instead of demanding
      // re-registration (HDFS-15113): the race only a promptly healed
      // partition can produce.
      throw SimException(
          "UnregisteredNodeException",
          "Heartbeat from dead datanode " + dn + " processed without re-registration");
    }
    // Removal already settled: the stale heartbeat is answered with a
    // re-registration demand, which the simulation applies inline.
    datanodes_[dn] = true;
  }
  dn_fd_->Heartbeat(dn);
}

void NameNode::HandleDatanodeLost(const std::string& dn) {
  CT_FRAME("DatanodeManager.removeDeadDatanode");
  log().Log(artifacts_->stmts.dn_removed, {dn});
  datanodes_.erase(dn);
  removed_datanodes_[dn] = cluster().loop().Now();
  for (auto& [blk, dns] : block_locations_) {
    std::erase(dns, dn);
  }
}

void NameNode::Promote() {
  CT_FRAME("FSEditLogLoader.replay");
  if (active_) {
    return;
  }
  // Replay the shared edit log. A record torn by the active's crash raises
  // LogHeaderCorruptException, which the loader handles by truncating — the
  // tolerated IO fault of §4.2.2.
  CT_PRE_READ(artifacts_->points.nn_journal_replay_read, id());
  if (journal_->mid_write) {
    log().Warn("LogHeaderCorruptException while reading edit log, truncating last record", {},
               "FSEditLogLoader.replay");
    journal_->mid_write = false;
    journal_->records -= 1;
  }
  active_ = true;
  log().Log(artifacts_->stmts.nn_active, {id()});
  for (ctsim::Node* node : cluster().nodes()) {
    if (node->id() != id() && node->IsRunning()) {
      Send(node->id(), "newActive", {{"nn", id()}});
    }
  }
}

// --- DataNode ---------------------------------------------------------------

DataNode::DataNode(ctsim::Cluster* cluster, std::string id, std::string nn,
                   const HdfsArtifacts* artifacts, const HdfsConfig* config)
    : Node(cluster, std::move(id)), current_nn_(std::move(nn)), artifacts_(artifacts),
      config_(config) {
  Handle("registerAck", [this](const Message& m) {
    registered_ = true;
    log().Log(artifacts_->stmts.bp_registered, {m.Arg("bp"), this->id()});
  });
  Handle("newActive", [this](const Message& m) {
    current_nn_ = m.Arg("nn");
    Send(current_nn_, "registerDatanode", {{"dn", this->id()}, {"host", host()}});
  });
  Handle("writeBlock", [this](const Message& m) {
    CT_FRAME("BlockReceiver.receivePacket");
    // Replica store: the IO point of the write pipeline.
    CT_IO_BEGIN(artifacts_->io.dn_block_write_io);
    CT_IO_END(artifacts_->io.dn_block_write_io);
    const std::string blk = m.Arg("blk");
    const std::string mirror = m.Arg("mirror");
    const std::string file = m.Arg("file");
    After(config_->block_store_ms, [this, blk, mirror, file] {
      stored_blocks_.insert(blk);
      if (!mirror.empty()) {
        Send(mirror, "writeBlock", {{"blk", blk}, {"mirror", ""}, {"file", file}});
      } else {
        Send(current_nn_, "blockReceived", {{"blk", blk}, {"dn", this->id()}, {"file", file}});
      }
    });
  });
  Handle("readBlock", [this](const Message& m) {
    Send(m.from, "blockData", {{"blk", m.Arg("blk")}});
  });
}

void DataNode::OnStart() {
  After(200, [this] { Send(current_nn_, "registerDatanode", {{"dn", id()}, {"host", host()}}); });
  Every(config_->heartbeat_ms, [this] { Send(current_nn_, "dnHeartbeat", {{"dn", id()}}); });
  Every(config_->block_report_ms, [this] { BlockReport(); });
}

void DataNode::BlockReport() {
  ctrt::ComponentSpan report(&this->cluster().loop(), "dn.block-report", "DatanodeManager");
  CT_FRAME("BPOfferService.blockReport");
  // The report is built from the block-pool registration — read without
  // checking that registration ever completed (the HDFS-14372 substrate).
  CT_PRE_READ(artifacts_->points.dn_block_report_read, id());
  // Report contents elided; liveness flows through heartbeats.
}

void DataNode::OnShutdown() {
  CT_FRAME("BPOfferService.stop");
  Send(current_nn_, "unregisterDatanode", {{"dn", id()}});
  if (!registered_) {
    // HDFS-14372: stopping a BPOfferService that never finished registering
    // dereferences the missing registration and aborts.
    throw SimException("NullPointerException", "Shutdown before register causing abort on " + id());
  }
}

// --- Client -----------------------------------------------------------------

HdfsClient::HdfsClient(ctsim::Cluster* cluster, std::string id, std::string nn, int num_files,
                       const HdfsArtifacts* artifacts, const HdfsConfig* config,
                       HdfsJobState* job)
    : Node(cluster, std::move(id)),
      current_nn_(std::move(nn)),
      num_files_(num_files),
      artifacts_(artifacts),
      config_(config),
      job_(job) {
  Handle("fileComplete", [this](const Message&) {
    phase_ = Phase::kRead;
    ++op_serial_;
    attempts_ = 0;
    NextOp();
  });
  Handle("fileLocations", [this](const Message& m) {
    ++op_serial_;
    Send(m.Arg("dn"), "readBlock", {{"blk", m.Arg("blk")}});
  });
  Handle("blockData", [this](const Message&) {
    ++current_file_;
    phase_ = Phase::kWrite;
    ++op_serial_;
    attempts_ = 0;
    if (current_file_ >= num_files_) {
      phase_ = Phase::kDone;
      job_->done = true;
      return;
    }
    NextOp();
  });
  Handle("newActive", [this](const Message& m) { current_nn_ = m.Arg("nn"); });
  Handle("fsStatus", [](const Message&) {});
}

void HdfsClient::StartWorkload() {
  // TestDFSIO starts once the datanodes have finished registering.
  After(3500, [this] { NextOp(); });
  // The "+curl" status query over the web interface, mid-run.
  After(4500, [this] { Send(current_nn_, "getFsStatus", {}); });
}

void HdfsClient::NextOp() {
  if (phase_ == Phase::kDone) {
    return;
  }
  if (phase_ == Phase::kWrite) {
    Send(current_nn_, "createFile",
         {{"file", FileName(current_file_)}, {"index", std::to_string(current_file_)}});
  } else {
    Send(current_nn_, "getBlockLocations", {{"file", FileName(current_file_)}});
  }
  int serial = op_serial_;
  After(config_->client_op_timeout_ms, [this, serial] { RetryCheck(serial); });
}

void HdfsClient::RetryCheck(int op_serial) {
  if (phase_ == Phase::kDone || op_serial != op_serial_) {
    return;  // The op advanced.
  }
  if (++attempts_ > 8) {
    job_->failed = true;
    return;
  }
  NextOp();
}

}  // namespace cthdfs
