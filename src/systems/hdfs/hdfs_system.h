// SystemUnderTest adapter for mini-HDFS (Table 4 row 2: TestDFSIO+curl).
#ifndef SRC_SYSTEMS_HDFS_HDFS_SYSTEM_H_
#define SRC_SYSTEMS_HDFS_HDFS_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/system_under_test.h"
#include "src/systems/hdfs/hdfs_defs.h"

namespace cthdfs {

class HdfsSystem : public ctcore::SystemUnderTest {
 public:
  explicit HdfsSystem(HdfsConfig config = HdfsConfig()) : config_(config) {}

  std::string name() const override { return "HDFS"; }
  std::string version() const override { return "3.3.0-SNAPSHOT"; }
  std::string workload_name() const override { return "TestDFSIO+curl"; }
  const ctmodel::ProgramModel& model() const override { return GetHdfsArtifacts().model; }
  int default_workload_size() const override { return Scaled(2); }
  std::vector<ctcore::KnownBug> known_bugs() const override;

  const HdfsConfig& config() const { return config_; }

 protected:
  std::unique_ptr<ctcore::WorkloadRun> MakeRun(int workload_size, uint64_t seed) const override;

 private:
  HdfsConfig config_;
};

}  // namespace cthdfs

#endif  // SRC_SYSTEMS_HDFS_HDFS_SYSTEM_H_
