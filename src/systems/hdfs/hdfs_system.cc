#include "src/systems/hdfs/hdfs_system.h"

#include "src/systems/hdfs/hdfs_nodes.h"

namespace cthdfs {

namespace {

class HdfsRun : public ctcore::WorkloadRun {
 public:
  HdfsRun(const HdfsSystem* system, int workload_size, uint64_t seed)
      : system_(system), workload_size_(workload_size), config_(system->config()),
        cluster_(seed) {
    // The run owns a scaled copy of the config; nodes point at it.
    config_.num_datanodes *= system_->scale();
    const HdfsArtifacts* artifacts = &GetHdfsArtifacts();
    const HdfsConfig* config = &config_;
    journal_ = std::make_unique<Journal>();
    active_ = cluster_.AddNode<NameNode>("namenode1:9000", std::string("namenode2:9000"),
                                         /*active=*/true, artifacts, config, journal_.get());
    standby_ = cluster_.AddNode<NameNode>("namenode2:9000", std::string("namenode1:9000"),
                                          /*active=*/false, artifacts, config, journal_.get());
    for (int i = 1; i <= config->num_datanodes; ++i) {
      cluster_.AddNode<DataNode>("dnode" + std::to_string(i) + ":50010",
                                 std::string("namenode1:9000"), artifacts, config);
    }
    client_ = cluster_.AddNode<HdfsClient>("dfsclient:2000", std::string("namenode1:9000"),
                                           workload_size, artifacts, config, &job_);
    client_->set_workload_driver(true);
  }

  ctsim::Cluster& cluster() override { return cluster_; }
  void Start() override { client_->StartWorkload(); }
  bool JobFinished() const override { return job_.done; }
  bool JobFailed() const override { return job_.failed; }
  ctsim::Time ExpectedDurationMs() const override {
    return 8000 + static_cast<ctsim::Time>(workload_size_) * 1500;
  }

 private:
  const HdfsSystem* system_;
  int workload_size_;
  HdfsConfig config_;  // scaled copy; nodes point at this
  ctsim::Cluster cluster_;
  std::unique_ptr<Journal> journal_;
  HdfsJobState job_;
  NameNode* active_ = nullptr;
  NameNode* standby_ = nullptr;
  HdfsClient* client_ = nullptr;
};

}  // namespace

std::unique_ptr<ctcore::WorkloadRun> HdfsSystem::MakeRun(int workload_size, uint64_t seed) const {
  return std::make_unique<HdfsRun>(this, workload_size, seed);
}

std::vector<ctcore::KnownBug> HdfsSystem::known_bugs() const {
  return {
      // Seeded message race for network-fault mode (listed first so a run
      // that also trips HDFS-14216's request failure triages to the race).
      {"HDFS-15113", "Major", "message-race", "Unresolved",
       "Heartbeat from dead datanode processed without re-registration", "DataNodeInfo",
       "DatanodeManager.registerDatanode", "Heartbeat from dead datanode"},
      {"HDFS-14216", "Major", "pre-read", "Fixed", "Request fails due to removed node",
       "DataNodeInfo", "DatanodeManager.getDatanode", "Request fails due to removed node"},
      {"HDFS-14372", "Major", "pre-read", "Fixed", "Shutdown before register causing abort",
       "BPOfferService", "BPOfferService.blockReport", "Shutdown before register"},
  };
}

}  // namespace cthdfs
