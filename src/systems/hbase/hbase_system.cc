#include "src/systems/hbase/hbase_system.h"

#include "src/systems/hbase/hbase_nodes.h"

namespace cthbase {

namespace {

class HBaseRun : public ctcore::WorkloadRun {
 public:
  HBaseRun(const HBaseSystem* system, int workload_size, uint64_t seed)
      : system_(system), config_(system->config()), cluster_(seed) {
    // The run owns a scaled copy of the config; nodes point at it. Regions
    // scale with the servers so per-server load stays constant.
    config_.num_regionservers *= system_->scale();
    config_.num_regions *= system_->scale();
    const HBaseArtifacts* artifacts = &GetHBaseArtifacts();
    const HBaseConfig* config = &config_;
    master_ = cluster_.AddNode<HMaster>("hmaster:16000", artifacts, config, &job_);
    cluster_.AddNode<ZkQuorum>("zkquorum:2181", std::string("hmaster:16000"), artifacts, config);
    for (int i = 1; i <= config->num_regionservers; ++i) {
      auto* rs = cluster_.AddNode<RegionServer>("rserver" + std::to_string(i) + ":16020",
                                                std::string("hmaster:16000"),
                                                std::string("zkquorum:2181"), artifacts, config);
      if (i == config->num_regionservers) {
        rs->set_defer_start(true);  // the late joiner
        late_joiner_ = rs->id();
      }
    }
    client_ = cluster_.AddNode<HBaseClient>("hclient:34000", std::string("hmaster:16000"),
                                            workload_size * 4, artifacts, config, &job_);
    client_->set_workload_driver(true);
  }

  ctsim::Cluster& cluster() override { return cluster_; }
  void Start() override {
    client_->StartWorkload();
    cluster_.loop().Schedule(config_.late_join_ms, [this] { cluster_.StartNode(late_joiner_); });
  }
  bool JobFinished() const override { return job_.done; }
  bool JobFailed() const override { return job_.failed; }
  ctsim::Time ExpectedDurationMs() const override {
    // The PE client's op count scales with the deployment (workload size is
    // Scaled and each unit is 4 ops at 400ms pacing), so the deadline grows
    // per scale step; at scale 1 it is the paper's fixed 16s for every
    // workload size, keeping profiler deadlines unchanged.
    return 16000 + static_cast<ctsim::Time>(system_->scale() - 1) * 12000;
  }

 private:
  const HBaseSystem* system_;
  HBaseConfig config_;  // scaled copy; nodes point at this
  ctsim::Cluster cluster_;
  HBaseJobState job_;
  HMaster* master_ = nullptr;
  HBaseClient* client_ = nullptr;
  std::string late_joiner_;
};

}  // namespace

std::unique_ptr<ctcore::WorkloadRun> HBaseSystem::MakeRun(int workload_size, uint64_t seed) const {
  return std::make_unique<HBaseRun>(this, workload_size, seed);
}

std::vector<ctcore::KnownBug> HBaseSystem::known_bugs() const {
  return {
      // Seeded message race for network-fault mode. Listed first: its window
      // anchors on the balancer scan, whose location HBASE-22050 shares, and
      // a race run usually trips the balancer's atomic violation too — the
      // triage must attribute the run to the race.
      {"HBASE-22862", "Critical", "message-race", "Unresolved",
       "Session heartbeat from expired region server accepted without restart", "ServerName",
       "LoadBalancer.balanceCluster", "Session heartbeat from expired region server"},
      {"HBASE-22041", "Critical", "post-write", "Unresolved", "Master startup node hang",
       "ServerName", "ServerManager.regionServerReport", ""},
      {"HBASE-22017", "Critical", "pre-read", "Fixed",
       "Master fails to become active due to removed node", "ServerName",
       "HMaster.finishActiveMasterInitialization", "fails to become active"},
      {"HBASE-21740", "Major", "post-write", "Fixed", "Shutdown during initialization causing abort",
       "MetricsRegionServer", "HRegionServer.initializeMetrics", ""},
      {"HBASE-21740", "Major", "post-write", "Fixed", "Shutdown during initialization causing abort",
       "MetricsRegionServer", "ServerCrashProcedure.execute", "Shutdown during initialization"},
      {"HBASE-22050", "Major", "pre-read", "Unresolved", "Atomic violation causing shutdown aborts",
       "RegionInfo", "LoadBalancer.balanceCluster", "Atomic violation"},
      {"HBASE-22023", "Trivial", "post-write", "Unresolved",
       "Shutdown during initialization causing abort", "MetricsRegionServer",
       "MetricsRegionServerWrapperImpl.init", ""},
      // Lower-layer bugs CrashTuner cannot reach (§4.1.1): the accessed
      // ZooKeeper meta-info never maps to a node. Listed for the
      // reproduction study; no location so triage never claims them.
      {"HBASE-7111", "Major", "pre-read", "Not reproduced", "ZNode meta-info unresolvable",
       "ZNode", "", ""},
      {"HBASE-5722", "Major", "pre-read", "Not reproduced", "ZNode meta-info unresolvable",
       "ZNode", "", ""},
      {"HBASE-5635", "Major", "pre-read", "Not reproduced", "ZNode meta-info unresolvable",
       "ZNode", "", ""},
  };
}

}  // namespace cthbase
