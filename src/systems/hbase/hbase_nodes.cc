#include "src/systems/hbase/hbase_nodes.h"

#include "src/runtime/component_span.h"
#include "src/runtime/tracer.h"
#include "src/sim/exception.h"

namespace cthbase {

using ctsim::Message;
using ctsim::SimException;

// How long a removal's recovery actions stay in flight — the width of the
// seeded message-race window. A stale heartbeat landing inside it hits the
// race; a later one takes the benign resync path. Sub-second-scale on
// purpose: the paper's observation is that recovery windows are narrow,
// which is why blind fault injection rarely lands in them.
constexpr ctsim::Time kRemovalRaceWindowMs = 1200;

// --- ZkQuorum ---------------------------------------------------------------

ZkQuorum::ZkQuorum(ctsim::Cluster* cluster, std::string id, std::string master,
                   const HBaseArtifacts* artifacts, const HBaseConfig* config)
    : Node(cluster, std::move(id)),
      master_(std::move(master)),
      artifacts_(artifacts),
      config_(config) {
  session_fd_ = std::make_unique<ctsim::FailureDetector>(
      this, config_->zk_session_timeout_ms, config_->zk_sweep_ms,
      [this](const std::string& owner) {
        std::vector<std::string> expired;
        for (const auto& [path, session_owner] : ephemerals_) {
          if (session_owner == owner) {
            expired.push_back(path);
          }
        }
        for (const auto& path : expired) {
          ephemerals_.erase(path);
        }
        expired_sessions_[owner] = this->cluster().loop().Now();
        Send(master_, "rsExpired", {{"rs", owner}});
      });
  Handle("createEphemeral", [this](const Message& m) {
    ephemerals_[m.Arg("path")] = m.from;
    session_fd_->Heartbeat(m.from);
    log().Log(artifacts_->stmts.znode_created, {m.Arg("path"), m.from});
  });
  Handle("sessionHeartbeat", [this](const Message& m) {
    auto expired = expired_sessions_.find(m.from);
    if (expired != expired_sessions_.end()) {
      const bool recovering =
          this->cluster().loop().Now() - expired->second <= kRemovalRaceWindowMs;
      expired_sessions_.erase(expired);
      if (recovering) {
        // The quorum accepts a heartbeat on a session it already expired
        // instead of answering SESSION_EXPIRED (the YouAreDeadException
        // race): the master's server-crash procedure is still running while
        // the region server, back from a healed partition, keeps serving.
        throw SimException("YouAreDeadException",
                           "Session heartbeat from expired region server " + m.from +
                               " accepted without restart");
      }
      // The crash procedure already finished: benign new-session path.
    }
    session_fd_->Heartbeat(m.from);
  });
  Handle("closeSession", [this](const Message& m) { session_fd_->NotifyLeft(m.from); });
}

void ZkQuorum::OnStart() { session_fd_->Start(); }

void ZkQuorum::OnHandlerException(const std::string& context, const SimException& e) {
  // A bad session op is rejected and logged; the quorum itself survives
  // (a real ZK server does not die on a stale client request).
  (void)context;
  (void)e;
}

// --- HMaster ----------------------------------------------------------------

HMaster::HMaster(ctsim::Cluster* cluster, std::string id, const HBaseArtifacts* artifacts,
                 const HBaseConfig* config, HBaseJobState* job)
    : Node(cluster, std::move(id)), artifacts_(artifacts), config_(config), job_(job) {
  SetCritical();
  Handle("reportForDuty", [this](const Message& m) { ReportForDuty(m); });
  Handle("serverInfo", [this](const Message& m) { ServerInfo(m); });
  Handle("rsExpired", [this](const Message& m) {
    log().Log(artifacts_->stmts.rs_expired, {m.Arg("rs")});
    ServerCrashProcedure(m.Arg("rs"));
  });
  Handle("regionOpened", [this](const Message& m) {
    auto it = regions_.find(m.Arg("region"));
    if (it != regions_.end() && it->second.server == m.from) {
      it->second.state = "OPEN";
      log().Log(artifacts_->stmts.region_opened, {m.Arg("region"), m.from});
    }
  });
  Handle("locate", [this](const Message& m) { Locate(m); });
  Handle("balance", [this](const Message& m) { ForceBalance(m); });
  Handle("clusterStatus", [this](const Message& m) {
    CT_FRAME("MasterRpcServices.getClusterStatus");
    int live = 0;
    std::set<std::string> snapshot = online_;
    for (const auto& rs : snapshot) {
      // Benign armed point: the membership check below tolerates removal.
      CT_PRE_READ(artifacts_->points.master_status_read, rs);
      if (online_.count(rs) > 0) {
        ++live;
      }
    }
    Send(m.from, "clusterStatusReply", {{"live", std::to_string(live)}});
  });
}

void HMaster::OnStart() {
  Every(config_->balancer_period_ms, [this] { BalancerChore(); });
  Every(config_->stuck_monitor_period_ms, [this] { StuckRegionChore(); });
  // Replication watcher touches its peers znode: a lower-layer ZooKeeper
  // value that never co-occurs with a server in any log line, so the online
  // analysis can never map it to a target node (§3.4 — why HBASE-7111,
  // HBASE-5722 and HBASE-5635 stay out of reach).
  Every(5000, [this] {
    CT_FRAME("ReplicationZKWatcher.refreshPeers");
    CT_PRE_READ(artifacts_->points.master_znode_read, "/hbase/replication/peers");
  });
}

void HMaster::OnHandlerException(const std::string& context, const SimException& e) {
  // State-machine and procedure exceptions are logged and tolerated; the
  // master survives (none of the seeded HBase bugs kill the master process).
  (void)context;
  (void)e;
}

void HMaster::ReportForDuty(const Message& m) {
  CT_FRAME("ServerManager.regionServerReport");
  const std::string rs = m.from;
  online_.insert(rs);
  // HBASE-22041 (Fig. 9): the server is online as far as the master knows,
  // but until it registers in ZooKeeper nobody can detect its death.
  CT_POST_WRITE(artifacts_->points.master_online_write, rs);
  log().Log(artifacts_->stmts.rs_reported, {rs});
  pending_info_.insert(rs);
  PollServerInfo(rs, 0);
}

void HMaster::PollServerInfo(const std::string& rs, int attempt) {
  if (pending_info_.count(rs) == 0) {
    return;
  }
  // //TODO: How many times should we retry — the startup master retries
  // forever (the HBASE-22041 hang); an active master gives up and runs the
  // server-crash procedure.
  if (active_ && attempt >= config_->info_retry_limit_active) {
    ServerCrashProcedure(rs);
    return;
  }
  Send(rs, "getServerInfo", {});
  After(config_->info_retry_ms, [this, rs, attempt] { PollServerInfo(rs, attempt + 1); });
}

void HMaster::ServerInfo(const Message& m) {
  const std::string rs = m.from;
  if (pending_info_.erase(rs) == 0) {
    return;
  }
  if (!active_) {
    if (meta_candidate_.empty()) {
      meta_candidate_ = rs;
    }
    // Startup blocks until *every* reported server has answered the startup
    // read — and the read retries forever (Fig. 9): a server that died
    // before reaching ZooKeeper stalls activation indefinitely.
    if (pending_info_.empty()) {
      After(config_->activation_delay_ms, [this] { Activate(); });
    }
    return;
  }
  // A server joining the running cluster gets a region rebalanced onto it.
  if (!rebalanced_) {
    rebalanced_ = true;
    std::string region = RegionName(config_->num_regions - 1);
    log().Log(artifacts_->stmts.region_moving, {region, rs});
    AssignRegion(region, rs, /*rebalance=*/true);
  }
}

void HMaster::Activate() {
  CT_FRAME("HMaster.finishActiveMasterInitialization");
  if (active_) {
    return;
  }
  // HBASE-22017: the activation path uses the remembered meta-server
  // candidate without re-checking that it is still online.
  CT_PRE_READ(artifacts_->points.master_activate_read, meta_candidate_);
  if (online_.count(meta_candidate_) == 0) {
    std::string failed = meta_candidate_;
    meta_candidate_ = PickServer("");
    if (!meta_candidate_.empty()) {
      After(1000, [this] { Activate(); });
    }
    throw SimException("ServerNotRunningException",
                       "Master fails to become active due to removed node " + failed);
  }
  active_ = true;
  log().Log(artifacts_->stmts.master_active, {id(), meta_candidate_});
  AssignInitialRegions();
}

std::string HMaster::PickServer(const std::string& exclude) {
  for (const auto& rs : online_) {
    if (rs != exclude && pending_info_.count(rs) == 0 && cluster().IsAlive(rs)) {
      return rs;
    }
  }
  return "";
}

void HMaster::AssignInitialRegions() {
  std::vector<std::string> servers(online_.begin(), online_.end());
  for (int r = 0; r < config_->num_regions; ++r) {
    const std::string& rs = servers[assign_rr_++ % servers.size()];
    log().Log(artifacts_->stmts.region_assigned, {RegionName(r), rs});
    AssignRegion(RegionName(r), rs, /*rebalance=*/false);
  }
}

void HMaster::AssignRegion(const std::string& region, const std::string& rs, bool rebalance) {
  RegionState state;
  state.server = rs;
  state.state = "OPENING";
  state.since = this->cluster().loop().Now();
  regions_[region] = state;
  Send(rs, "openRegion", {{"region", region}, {"reason", rebalance ? "rebalance" : "assign"}});
}

void HMaster::ServerCrashProcedure(const std::string& rs) {
  ctrt::ComponentSpan procedure(&this->cluster().loop(), "master.server-crash-procedure",
                                "ServerCrashProcedure");
  CT_FRAME("ServerCrashProcedure.execute");
  if (online_.erase(rs) == 0) {
    return;
  }
  if (pending_info_.count(rs) > 0) {
    pending_info_.erase(rs);
    // HBASE-21740 / HBASE-22023: the crash procedure cannot cope with a
    // server that died before finishing initialization.
    throw SimException("IllegalStateException",
                       "Shutdown during initialization causing abort for " + rs);
  }
  // Regions of the dead server are recovered: the write-ahead log must be
  // split before they can be reassigned, so they sit in RECOVERING for a
  // while — the HBASE-22050 window.
  for (auto& [region, state] : regions_) {
    if (state.server != rs || state.state == "RECOVERING") {
      continue;
    }
    state.state = "RECOVERING";
    state.since = this->cluster().loop().Now();
    std::string region_copy = region;
    After(config_->wal_split_ms, [this, region_copy] {
      auto it = regions_.find(region_copy);
      if (it == regions_.end() || it->second.state != "RECOVERING") {
        return;
      }
      std::string target = PickServer(it->second.server);
      if (target.empty()) {
        return;
      }
      log().Log(artifacts_->stmts.region_moving, {region_copy, target});
      AssignRegion(region_copy, target, /*rebalance=*/false);
    });
  }
}

void HMaster::Locate(const Message& m) {
  // The client-facing path handles every region state (in-transition replies
  // ask the client to retry), so it carries no crash point.
  auto it = regions_.find(m.Arg("region"));
  if (it == regions_.end() || it->second.state != "OPEN") {
    Send(m.from, "locateRetry", {{"region", m.Arg("region")}});
    return;
  }
  Send(m.from, "location", {{"region", m.Arg("region")}, {"rs", it->second.server}});
}

void HMaster::ForceBalance(const ctsim::Message&) {
  // Admin-triggered balance (the fuzz grammar's force-balance op): same scan
  // as the chore, but under the RPC service frame — an off-schedule run that
  // can land while a server-crash procedure still has regions RECOVERING.
  CT_FRAME("MasterRpcServices.balance");
  BalancerChore();
}

void HMaster::BalancerChore() {
  CT_FRAME("LoadBalancer.balanceCluster");
  if (!active_) {
    return;
  }
  std::vector<std::string> names;
  for (const auto& [region, state] : regions_) {
    names.push_back(region);
  }
  for (const auto& region : names) {
    // HBASE-22050: the balancer walks region states without expecting the
    // transient RECOVERING state a mid-move server death leaves behind.
    CT_PRE_READ(artifacts_->points.master_balancer_read, region);
    auto it = regions_.find(region);
    if (it == regions_.end()) {
      continue;
    }
    if (it->second.state == "RECOVERING") {
      throw SimException("AtomicViolationException",
                         "Atomic violation causing shutdown aborts for region " + region);
    }
  }
}

void HMaster::StuckRegionChore() {
  if (!active_) {
    return;
  }
  ctsim::Time now = this->cluster().loop().Now();
  for (auto& [region, state] : regions_) {
    if (state.state == "OPENING" && now - state.since > config_->stuck_threshold_ms) {
      // §4.1.3: a region stuck in OPENING is eventually killed and
      // reassigned — minutes later.
      std::string target = PickServer(state.server);
      if (!target.empty()) {
        log().Log(artifacts_->stmts.region_moving, {region, target});
        AssignRegion(region, target, /*rebalance=*/false);
      }
    }
  }
}

// --- RegionServer -----------------------------------------------------------

RegionServer::RegionServer(ctsim::Cluster* cluster, std::string id, std::string master,
                           std::string zk, const HBaseArtifacts* artifacts,
                           const HBaseConfig* config)
    : Node(cluster, std::move(id)),
      master_(std::move(master)),
      zk_(std::move(zk)),
      artifacts_(artifacts),
      config_(config) {
  Handle("getServerInfo", [this](const Message& m) {
    if (init_done_) {
      Send(m.from, "serverInfo", {});
    }
  });
  Handle("openRegion", [this](const Message& m) { OpenRegion(m); });
  Handle("put", [this](const Message& m) {
    auto it = regions_.find(m.Arg("region"));
    if (it == regions_.end() || it->second != "OPEN") {
      return;  // Client times out and relocates.
    }
    CT_FRAME("HRegion.doMiniBatchMutate");
    CT_IO_BEGIN(artifacts_->io.rs_wal_append_io);
    CT_IO_END(artifacts_->io.rs_wal_append_io);
    Send(m.from, "putAck", {{"region", m.Arg("region")}});
  });
}

void RegionServer::OnStart() {
  After(config_->rs_report_delay_ms, [this] { Send(master_, "reportForDuty", {}); });
  After(config_->rs_metrics1_ms, [this] {
    CT_FRAME("HRegionServer.initializeMetrics");
    // HBASE-21740 window: metrics source created early in initialization.
    CT_POST_WRITE(artifacts_->points.rs_metrics1_write, this->id());
  });
  After(config_->rs_metrics2_ms, [this] {
    CT_FRAME("MetricsRegionServerWrapperImpl.init");
    // HBASE-22023 window: the metrics wrapper initializes later.
    CT_POST_WRITE(artifacts_->points.rs_metrics2_write, this->id());
  });
  After(config_->rs_init_done_ms, [this] { init_done_ = true; });
  After(config_->rs_zk_register_ms, [this] {
    zk_registered_ = true;
    Send(zk_, "createEphemeral", {{"path", "/hbase/rs/" + this->id()}});
    Every(config_->session_heartbeat_ms, [this] { Send(zk_, "sessionHeartbeat", {}); });
  });
}

void RegionServer::OnShutdown() {
  if (zk_registered_) {
    Send(zk_, "closeSession", {});
  }
}

void RegionServer::OpenRegion(const Message& m) {
  CT_FRAME("HRegion.openRegion");
  const std::string region = m.Arg("region");
  regions_[region] = "OPENING";
  if (m.Arg("reason") == "rebalance") {
    CT_FRAME("HRegion.openRegionRebalance");
    // A crash here, on a server that has reported but not yet reached
    // ZooKeeper, leaves the region stuck in OPENING (§4.1.3's HBase timeout).
    CT_POST_WRITE(artifacts_->points.rs_open_rebalance_write, region);
  } else {
    CT_POST_WRITE(artifacts_->points.rs_open_region_write, region);
  }
  After(config_->region_open_ms, [this, region] {
    if (regions_.count(region) > 0) {
      regions_[region] = "OPEN";
      Send(master_, "regionOpened", {{"region", region}});
    }
  });
}

// --- Client -----------------------------------------------------------------

HBaseClient::HBaseClient(ctsim::Cluster* cluster, std::string id, std::string master, int num_ops,
                         const HBaseArtifacts* artifacts, const HBaseConfig* config,
                         HBaseJobState* job)
    : Node(cluster, std::move(id)),
      master_(std::move(master)),
      num_ops_(num_ops),
      artifacts_(artifacts),
      config_(config),
      job_(job) {
  Handle("location", [this](const Message& m) {
    ++serial_;
    Send(m.Arg("rs"), "put", {{"region", m.Arg("region")}});
  });
  Handle("locateRetry", [this](const Message&) {
    // Region in transition; retry after a pause (handled by RetryCheck).
  });
  Handle("putAck", [this](const Message&) {
    ++completed_;
    ++serial_;
    attempts_ = 0;
    if (completed_ >= num_ops_) {
      job_->done = true;
      return;
    }
    After(config_->client_op_pacing_ms, [this] { NextOp(); });
  });
  Handle("clusterStatusReply", [](const Message&) {});
}

void HBaseClient::StartWorkload() {
  After(config_->client_start_ms, [this] { NextOp(); });
  After(config_->client_start_ms + 1500, [this] { Send(master_, "clusterStatus", {}); });
}

void HBaseClient::NextOp() {
  if (completed_ >= num_ops_) {
    return;
  }
  std::string region = RegionName(completed_ % config_->num_regions);
  Send(master_, "locate", {{"region", region}});
  int serial = serial_;
  After(config_->client_retry_ms, [this, serial] { RetryCheck(serial); });
}

void HBaseClient::RetryCheck(int serial) {
  if (completed_ >= num_ops_ || serial != serial_) {
    return;
  }
  if (++attempts_ > 600) {
    job_->failed = true;
    return;
  }
  NextOp();
}

}  // namespace cthbase
