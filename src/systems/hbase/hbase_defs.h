// Shared definitions for the mini-HBase system under test.
//
// Mini-HBase models an HMaster, RegionServers, and the lower-layer
// ZooKeeper-like coordination service HBase delegates liveness to. A
// RegionServer announces itself twice: it reports for duty to the master,
// and (later, after initializing) registers an ephemeral znode in ZooKeeper.
// Only the znode gives the cluster crash detection — the gap between the two
// registrations is exactly the HBASE-22041 startup-hang window of Fig. 9.
//
// Seeded windows: HBASE-22041 (startup hang), HBASE-22017 (activation reads
// a removed meta-server candidate), HBASE-21740 / HBASE-22023 (crash during
// RegionServer initialization aborts the server-crash procedure; the init
// window is seconds wide, which is why random injection can find these),
// HBASE-22050 (balancer reads a region whose server died mid-move), plus the
// §4.1.3 stuck-OPENING-region timeout and the unresolvable lower-layer
// ZNode read that reproduces why HBASE-7111/5722/5635 cannot be triggered.
#ifndef SRC_SYSTEMS_HBASE_HBASE_DEFS_H_
#define SRC_SYSTEMS_HBASE_HBASE_DEFS_H_

#include <string>

#include "src/model/program_model.h"

namespace cthbase {

struct HBaseConfig {
  int num_regionservers = 3;  // the third joins mid-run
  int num_regions = 4;
  uint64_t rs_report_delay_ms = 300;
  uint64_t rs_metrics1_ms = 800;    // HBASE-21740 window
  uint64_t rs_metrics2_ms = 2000;   // HBASE-22023 window
  uint64_t rs_init_done_ms = 3100;
  uint64_t rs_zk_register_ms = 3600;  // end of the ZK-blind window
  uint64_t late_join_ms = 6000;       // rserver3 starts here
  uint64_t activation_delay_ms = 1500;  // after first serverInfo (HBASE-22017)
  uint64_t info_retry_ms = 1000;
  int info_retry_limit_active = 5;  // startup master retries forever (the TODO)
  uint64_t zk_session_timeout_ms = 2000;
  uint64_t zk_sweep_ms = 300;
  uint64_t region_open_ms = 300;
  uint64_t wal_split_ms = 15000;  // server-crash recovery (HBASE-22050 window)
  uint64_t balancer_period_ms = 4000;
  uint64_t stuck_monitor_period_ms = 10000;
  uint64_t stuck_threshold_ms = 60000;  // §4.1.3: stuck region reassigned late
  uint64_t client_start_ms = 6000;
  uint64_t client_retry_ms = 900;
  uint64_t client_op_pacing_ms = 400;
  uint64_t session_heartbeat_ms = 600;
};

struct HBaseStatements {
  int rs_reported = -1;      // "RegionServer {} reported for duty"
  int znode_created = -1;    // "RegionServer ephemeral znode {} created by {}"
  int master_active = -1;    // "Master {} is now active, meta on {}"
  int region_assigned = -1;  // "Region {} assigned to {}"
  int region_moving = -1;    // "Region {} moving to {}"
  int rs_expired = -1;       // "RegionServer {} session expired"
  int region_opened = -1;    // "Region {} opened on {}"
};

struct HBasePoints {
  int master_online_write = -1;     // HBASE-22041 post-write (ServerName)
  int master_activate_read = -1;    // HBASE-22017 pre-read (ServerName)
  int master_balancer_read = -1;    // HBASE-22050 pre-read (RegionInfo)
  int master_status_read = -1;      // benign pre-read (curl)
  int master_znode_read = -1;       // lower-layer ZNode: never resolvable
  int rs_metrics1_write = -1;       // HBASE-21740 post-write (MetricsRegionServer)
  int rs_metrics2_write = -1;       // HBASE-22023 post-write (MetricsRegionServer)
  int rs_open_region_write = -1;    // assignment-path region write
  int rs_open_rebalance_write = -1;  // rebalance-path region write (stuck window)
};

struct HBaseIoPoints {
  int rs_wal_append_io = -1;  // RegionServer WAL append on each put
};

struct HBaseArtifacts {
  ctmodel::ProgramModel model{"HBase"};
  HBaseStatements stmts;
  HBasePoints points;
  HBaseIoPoints io;
};

const HBaseArtifacts& GetHBaseArtifacts();

std::string RegionName(int index);

}  // namespace cthbase

#endif  // SRC_SYSTEMS_HBASE_HBASE_DEFS_H_
