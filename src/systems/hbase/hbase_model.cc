// Static program model for mini-HBase.
#include "src/systems/hbase/hbase_defs.h"

#include "src/logging/statement.h"
#include "src/model/catalog.h"

namespace cthbase {

namespace {

using ctmodel::AccessKind;
using ctmodel::AccessPointDecl;
using ctmodel::FieldDecl;
using ctmodel::IoPointDecl;
using ctmodel::LogBinding;
using ctmodel::ProgramModel;
using ctmodel::TypeDecl;

HBaseArtifacts* Build() {
  auto* artifacts = new HBaseArtifacts();
  ProgramModel& model = artifacts->model;
  ctmodel::AddBaseTypes(&model);

  auto add_type = [&](const std::string& name, const std::string& super = "",
                      std::vector<std::string> elements = {}, bool closeable = false) {
    TypeDecl type;
    type.name = name;
    type.supertype = super;
    type.element_types = std::move(elements);
    type.closeable = closeable;
    model.AddType(type);
  };
  // The ServerName family of Table 1: HRegionServer referenced through
  // several convertible types.
  add_type("hbase.ServerName");
  add_type("hbase.HServerInfo", "hbase.ServerName");
  add_type("hbase.HServerAddress", "hbase.ServerName");
  add_type("hbase.client.RegionInfo");
  add_type("hbase.HRegion");
  add_type("hbase.zookeeper.ZNode");
  add_type("hbase.regionserver.MetricsRegionServer");
  add_type("Set<ServerName>", "", {"hbase.ServerName"});
  add_type("HashMap<RegionInfo,RegionState>", "", {"hbase.client.RegionInfo"});
  add_type("HashMap<RegionInfo,HRegion>", "",
           {"hbase.client.RegionInfo", "hbase.HRegion"});
  add_type("hbase.regionserver.wal.WALWriter", "", {}, /*closeable=*/true);

  auto add_field = [&](const std::string& clazz, const std::string& name, const std::string& type,
                       bool ctor_only = false) {
    FieldDecl field;
    field.clazz = clazz;
    field.name = name;
    field.type = type;
    field.set_only_in_constructor = ctor_only;
    model.AddField(field);
  };
  add_field("ServerManager", "onlineServers", "Set<ServerName>");
  add_field("HMaster", "metaServerCandidate", "hbase.ServerName");
  add_field("AssignmentManager", "regionStates", "HashMap<RegionInfo,RegionState>");
  add_field("HRegionServer", "onlineRegions", "HashMap<RegionInfo,HRegion>");
  add_field("HRegionServer", "metricsRegionServer", "hbase.regionserver.MetricsRegionServer");
  add_field("ReplicationZKWatcher", "peersZNode", "hbase.zookeeper.ZNode");
  add_field("hbase.HRegion", "regionInfo", "hbase.client.RegionInfo", /*ctor_only=*/true);
  // MetricsRegionServer is indexed by the server it measures; the
  // constructor-only field makes it a meta-info type through Definition 2's
  // containing-class rule (it is the meta-info of HBASE-21740/22023).
  add_field("hbase.regionserver.MetricsRegionServer", "serverName", "hbase.ServerName",
            /*ctor_only=*/true);

  auto add_point = [&](const std::string& field, AccessKind kind, const std::string& clazz,
                       const std::string& method, int line, const std::string& op = "") {
    AccessPointDecl point;
    point.field_id = field;
    point.kind = kind;
    point.clazz = clazz;
    point.method = method;
    point.line = line;
    point.collection_op = op;
    point.executable = true;
    return model.AddAccessPoint(point);
  };
  auto& points = artifacts->points;
  points.master_online_write = add_point("ServerManager.onlineServers", AccessKind::kWrite,
                                         "ServerManager", "regionServerReport", 204, "add");
  points.master_activate_read = add_point("HMaster.metaServerCandidate", AccessKind::kRead,
                                          "HMaster", "finishActiveMasterInitialization", 915);
  points.master_balancer_read = add_point("AssignmentManager.regionStates", AccessKind::kRead,
                                          "LoadBalancer", "balanceCluster", 143, "values");
  points.master_status_read = add_point("ServerManager.onlineServers", AccessKind::kRead,
                                        "MasterRpcServices", "getClusterStatus", 61, "contain");
  points.master_znode_read = add_point("ReplicationZKWatcher.peersZNode", AccessKind::kRead,
                                       "ReplicationZKWatcher", "refreshPeers", 33);
  points.rs_metrics1_write = add_point("HRegionServer.metricsRegionServer", AccessKind::kWrite,
                                       "HRegionServer", "initializeMetrics", 402);
  points.rs_metrics2_write = add_point("HRegionServer.metricsRegionServer", AccessKind::kWrite,
                                       "MetricsRegionServerWrapperImpl", "init", 58);
  points.rs_open_region_write = add_point("HRegionServer.onlineRegions", AccessKind::kWrite,
                                          "HRegion", "openRegion", 710, "put");
  points.rs_open_rebalance_write = add_point("HRegionServer.onlineRegions", AccessKind::kWrite,
                                             "HRegion", "openRegionRebalance", 733, "put");

  // Declared call structure. Master RPCs, the active-master bootstrap
  // procedure, chores and ZK watchers all start a fresh stack; the only
  // nested frame the workload produces is the rebalance path reopening a
  // region from within openRegion.
  auto add_method = [&](const std::string& clazz, const std::string& name, bool entry = false) {
    ctmodel::MethodDecl method;
    method.clazz = clazz;
    method.name = name;
    method.entry_point = entry;
    model.AddMethod(method);
  };
  add_method("ServerManager", "regionServerReport", /*entry=*/true);
  add_method("MasterRpcServices", "getClusterStatus", /*entry=*/true);
  add_method("HMaster", "finishActiveMasterInitialization", /*entry=*/true);
  add_method("ServerCrashProcedure", "execute", /*entry=*/true);
  add_method("ServerCrashProcedure", "expireServer");
  add_method("LoadBalancer", "balanceCluster", /*entry=*/true);
  add_method("ReplicationZKWatcher", "refreshPeers", /*entry=*/true);
  add_method("HRegionServer", "initializeMetrics", /*entry=*/true);
  add_method("MetricsRegionServerWrapperImpl", "init", /*entry=*/true);
  add_method("HRegion", "openRegion", /*entry=*/true);
  add_method("HRegion", "doMiniBatchMutate", /*entry=*/true);
  add_method("ZKWatcher", "createEphemeral", /*entry=*/true);
  add_method("ServerManager", "expireServer", /*entry=*/true);
  add_method("HRegion", "openRegionRebalance");
  add_method("AssignmentManager", "assign");
  add_method("AssignmentManager", "move");
  add_method("MasterRpcServices", "balance", /*entry=*/true);
  model.AddCallEdge({"HRegion.openRegion", "HRegion.openRegionRebalance",
                     ctmodel::CallKind::kStatic});
  // Assignments run inside the bootstrap and crash procedures; moves come
  // from the balancer chore.
  model.AddCallEdge({"HMaster.finishActiveMasterInitialization", "AssignmentManager.assign",
                     ctmodel::CallKind::kStatic});
  model.AddCallEdge({"ServerCrashProcedure.execute", "AssignmentManager.assign",
                     ctmodel::CallKind::kStatic});
  model.AddCallEdge({"LoadBalancer.balanceCluster", "AssignmentManager.move",
                     ctmodel::CallKind::kStatic});
  // The admin RPC drives the same balancer scan off-schedule.
  model.AddCallEdge({"MasterRpcServices.balance", "LoadBalancer.balanceCluster",
                     ctmodel::CallKind::kStatic});

  auto& registry = ctlog::StatementRegistry::Instance();
  auto& stmts = artifacts->stmts;
  auto bind = [&](int id, std::vector<ctmodel::LogArg> args) {
    LogBinding binding;
    binding.statement_id = id;
    binding.args = std::move(args);
    model.BindLog(binding);
  };
  stmts.rs_reported = registry.Register(ctlog::Level::kInfo, "RegionServer {} reported for duty",
                                        "ServerManager.regionServerReport");
  bind(stmts.rs_reported, {{"hbase.ServerName", "ServerManager.onlineServers"}});
  stmts.znode_created =
      registry.Register(ctlog::Level::kInfo, "RegionServer ephemeral znode {} created by {}",
                        "ZKWatcher.createEphemeral");
  bind(stmts.znode_created,
       {{"hbase.zookeeper.ZNode", ""}, {"hbase.ServerName", ""}});
  stmts.master_active = registry.Register(ctlog::Level::kInfo, "Master {} is now active, meta on {}",
                                          "HMaster.finishActiveMasterInitialization");
  bind(stmts.master_active, {{"hbase.ServerName", ""}, {"hbase.ServerName", ""}});
  stmts.region_assigned = registry.Register(ctlog::Level::kInfo, "Region {} assigned to {}",
                                            "AssignmentManager.assign");
  bind(stmts.region_assigned, {{"hbase.client.RegionInfo", ""}, {"hbase.ServerName", ""}});
  stmts.region_moving = registry.Register(ctlog::Level::kInfo, "Region {} moving to {}",
                                          "AssignmentManager.move");
  bind(stmts.region_moving, {{"hbase.client.RegionInfo", ""}, {"hbase.ServerName", ""}});
  stmts.rs_expired = registry.Register(ctlog::Level::kWarn, "RegionServer {} session expired",
                                       "ServerManager.expireServer");
  bind(stmts.rs_expired, {{"hbase.ServerName", ""}});
  stmts.region_opened = registry.Register(ctlog::Level::kInfo, "Region {} opened on {}",
                                          "HRegion.openRegion");
  bind(stmts.region_opened, {{"hbase.client.RegionInfo", ""}, {"hbase.ServerName", ""}});

  model.AddIoMethod({"hbase.regionserver.wal.WALWriter", "write"});
  model.AddIoMethod({"hbase.regionserver.wal.WALWriter", "close"});
  {
    IoPointDecl wal;
    wal.io_class = "hbase.regionserver.wal.WALWriter";
    wal.io_method = "write";
    wal.callsite = "HRegion.doMiniBatchMutate";
    wal.executable = true;
    artifacts->io.rs_wal_append_io = model.AddIoPoint(wal);
  }

  ctmodel::CatalogSpec spec;
  spec.packages = {"org.apache.hadoop.hbase.master", "org.apache.hadoop.hbase.regionserver",
                   "org.apache.hadoop.hbase.client", "org.apache.hadoop.hbase.zookeeper",
                   "org.apache.hadoop.hbase.replication"};
  spec.stems = {"Region",  "Store",  "Compaction", "Flush",  "Assignment", "Procedure",
                "Balance", "Quota",  "Snapshot",   "Backup", "Coprocessor"};
  spec.suffixes = {"Manager", "Impl", "Service", "Handler", "Chore", "Util", "Tracker"};
  spec.num_classes = 300;
  spec.metainfo_field_types = {"hbase.ServerName", "hbase.client.RegionInfo"};
  spec.holders_per_metainfo_type = 4;
  spec.seed = 0xb5;
  ctmodel::PopulateCatalog(&model, spec);

  // Multi-crash hypotheses: a second RegionServer (or the fresh master) dies
  // while the cluster is still reassigning after the first crash.
  model.AddMultiCrashPair(
      {artifacts->points.master_online_write, artifacts->points.master_activate_read,
       "RS lost as the master records it online, master itself lost so the backup "
       "activates over the half-updated server list (HBASE-22041 then HBASE-22017)"});
  model.AddMultiCrashPair(
      {artifacts->points.master_balancer_read, artifacts->points.rs_open_rebalance_write,
       "RS lost under the balancer's region scan, destination RS lost while opening "
       "the moved region (HBASE-22050 stuck-region window)"});

  // Network-fault bug window. The balancer scan is the anchor because it is
  // the earliest read whose value resolves to a region server *after* that
  // server holds a ZK session (rs_zk_register_ms = 3600 ms): the partition
  // must cut an already-tracked session for the expiry sweep to tombstone
  // it. 2500 ms covers the 2000 ms session timeout + 300 ms sweep.
  model.AddNetworkFaultWindow(
      {artifacts->points.master_balancer_read, 2500, "HBASE-22862",
       "RS partitioned under the balancer scan, session expired, heals and heartbeats "
       "into the quorum without reconnecting"});

  // Observability spans for the declared fault windows (campaign traces
  // label the injections "inject:<name>"; ctlint keeps the set complete).
  model.AddSpan({"master.rs-report", "ServerManager.regionServerReport",
                 "RS report recording the server online"});
  model.AddSpan({"master.activate", "HMaster.finishActiveMasterInitialization",
                 "backup master activation over the recovered server list"});
  model.AddSpan({"master.balance", "LoadBalancer.balanceCluster",
                 "balancer scan over the online region servers"});
  model.AddSpan({"rs.open-region", "HRegion.openRegionRebalance",
                 "destination RS opening a region moved by the balancer"});
  // Recovery-phase anchors of the remaining executable crash points: the
  // equivalence partition keys on the span name.
  model.AddSpan({"rs.open-region-assign", "HRegion.openRegion",
                 "RS opening a region on initial assignment"});
  model.AddSpan({"rs.init-metrics", "HRegionServer.initializeMetrics",
                 "RS metrics subsystem bring-up"});
  model.AddSpan({"master.cluster-status", "MasterRpcServices.getClusterStatus",
                 "client-facing cluster status read on the master"});
  model.AddSpan({"rs.metrics-wrapper-init", "MetricsRegionServerWrapperImpl.init",
                 "metrics wrapper initialization over server state"});
  model.AddSpan({"rs.refresh-peers", "ReplicationZKWatcher.refreshPeers",
                 "replication peer list refresh from ZK"});
  // Component span on its own anchor method (keeping the existing
  // ServerCrashProcedure.execute injection anchor untouched): one full
  // crash-procedure sweep on the master, the role the fuzz grammar kills.
  model.AddSpan({"master.server-crash-procedure", "ServerCrashProcedure.expireServer",
                 "master-side crash procedure recovering a dead RS's regions",
                 "ServerCrashProcedure"});

  // Workload-fuzzing grammar: RPC ops name their declared handler, node ops
  // the class whose recovery logic the fault exercises (ctlint's
  // grammar-op-unknown-target keeps both honest).
  {
    ctmodel::GrammarOpDecl op;
    op.name = "hbase.cluster-status";
    op.kind = ctmodel::GrammarOpKind::kRpc;
    op.target_method = "MasterRpcServices.getClusterStatus";
    op.rpc_verb = "clusterStatus";
    op.target_prefix = "hmaster";
    op.weight = 2;
    op.min_time_ms = 2000;
    op.max_time_ms = 20000;
    op.note = "status scan racing online-set mutations";
    model.AddGrammarOp(op);
  }
  {
    ctmodel::GrammarOpDecl op;
    op.name = "hbase.expire-rs";
    op.kind = ctmodel::GrammarOpKind::kRpc;
    op.target_method = "ServerCrashProcedure.execute";
    op.rpc_verb = "rsExpired";
    op.target_prefix = "hmaster";
    op.args = {{"rs", "%NODE%"}};
    op.arg_prefix = "rserver";
    op.weight = 2;
    op.min_time_ms = 4000;
    op.max_time_ms = 18000;
    op.note = "forced session expiry: crash procedure against a live RS";
    model.AddGrammarOp(op);
  }
  {
    ctmodel::GrammarOpDecl op;
    op.name = "hbase.force-balance";
    op.kind = ctmodel::GrammarOpKind::kRpc;
    op.target_method = "MasterRpcServices.balance";
    op.rpc_verb = "balance";
    op.target_prefix = "hmaster";
    op.weight = 2;
    op.min_time_ms = 3000;
    op.max_time_ms = 18000;
    op.note = "off-schedule balancer scan; races server-crash recovery";
    model.AddGrammarOp(op);
  }
  {
    ctmodel::GrammarOpDecl op;
    op.name = "hbase.kill-rs";
    op.kind = ctmodel::GrammarOpKind::kCrash;
    op.target_class = "ServerCrashProcedure";
    op.target_prefix = "rserver";
    op.weight = 3;
    op.min_time_ms = 4000;
    op.max_time_ms = 18000;
    op.note = "fail-stop an RS; regions reassign via the crash procedure";
    model.AddGrammarOp(op);
  }
  {
    ctmodel::GrammarOpDecl op;
    op.name = "hbase.stop-rs";
    op.kind = ctmodel::GrammarOpKind::kShutdown;
    op.target_class = "ServerCrashProcedure";
    op.target_prefix = "rserver";
    op.weight = 2;
    op.min_time_ms = 4000;
    op.max_time_ms = 18000;
    op.note = "graceful RS stop closing its ZK session first";
    model.AddGrammarOp(op);
  }
  return artifacts;
}

}  // namespace

const HBaseArtifacts& GetHBaseArtifacts() {
  static const HBaseArtifacts* artifacts = Build();
  return *artifacts;
}

std::string RegionName(int index) {
  return "usertable,row" + std::to_string(index * 250000) + ",1652417.region_" +
         std::to_string(index);
}

}  // namespace cthbase
