// SystemUnderTest adapter for mini-HBase (Table 4 row 3: PE+curl).
#ifndef SRC_SYSTEMS_HBASE_HBASE_SYSTEM_H_
#define SRC_SYSTEMS_HBASE_HBASE_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/system_under_test.h"
#include "src/systems/hbase/hbase_defs.h"

namespace cthbase {

class HBaseSystem : public ctcore::SystemUnderTest {
 public:
  explicit HBaseSystem(HBaseConfig config = HBaseConfig()) : config_(config) {}

  std::string name() const override { return "HBase"; }
  std::string version() const override { return "3.0.0-SNAPSHOT"; }
  std::string workload_name() const override { return "PE+curl"; }
  const ctmodel::ProgramModel& model() const override { return GetHBaseArtifacts().model; }
  int default_workload_size() const override { return Scaled(3); }
  std::vector<ctcore::KnownBug> known_bugs() const override;

  const HBaseConfig& config() const { return config_; }

 protected:
  std::unique_ptr<ctcore::WorkloadRun> MakeRun(int workload_size, uint64_t seed) const override;

 private:
  HBaseConfig config_;
};

}  // namespace cthbase

#endif  // SRC_SYSTEMS_HBASE_HBASE_SYSTEM_H_
