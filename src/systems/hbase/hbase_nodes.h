// Mini-HBase nodes: HMaster, RegionServers, the ZooKeeper-like coordination
// service, and the PE client.
#ifndef SRC_SYSTEMS_HBASE_HBASE_NODES_H_
#define SRC_SYSTEMS_HBASE_HBASE_NODES_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/sim/cluster.h"
#include "src/sim/failure_detector.h"
#include "src/systems/hbase/hbase_defs.h"

namespace cthbase {

struct HBaseJobState {
  bool done = false;
  bool failed = false;
};

// The lower-layer coordination service. RegionServers create ephemeral
// znodes and heartbeat their sessions; expiry is the *only* crash signal the
// master gets — a server that dies before registering here is invisible
// (the HBASE-22041 substrate).
class ZkQuorum : public ctsim::Node {
 public:
  ZkQuorum(ctsim::Cluster* cluster, std::string id, std::string master,
           const HBaseArtifacts* artifacts, const HBaseConfig* config);

 protected:
  void OnStart() override;
  void OnHandlerException(const std::string& context, const ctsim::SimException& e) override;

 private:
  std::string master_;
  const HBaseArtifacts* artifacts_;
  const HBaseConfig* config_;
  std::map<std::string, std::string> ephemerals_;  // znode path → owner
  // Sessions the expiry sweep already declared dead, by expiry time. A
  // heartbeat from one can only arrive through a healed partition (a dead
  // RS never speaks again, a stopping one closes its session first) — the
  // seeded message race of network-fault mode. The race is live only while
  // the master's server-crash procedure is still running; later stale
  // heartbeats take the benign new-session path. Either way the tombstone
  // is cleared on first contact.
  std::map<std::string, ctsim::Time> expired_sessions_;
  std::unique_ptr<ctsim::FailureDetector> session_fd_;
};

class HMaster : public ctsim::Node {
 public:
  HMaster(ctsim::Cluster* cluster, std::string id, const HBaseArtifacts* artifacts,
          const HBaseConfig* config, HBaseJobState* job);

  struct RegionState {
    std::string server;
    std::string state;  // OPENING / OPEN / RECOVERING
    ctsim::Time since = 0;
  };

  bool active() const { return active_; }
  const std::map<std::string, RegionState>& regions() const { return regions_; }
  const std::set<std::string>& online_servers() const { return online_; }

 protected:
  void OnStart() override;
  void OnHandlerException(const std::string& context, const ctsim::SimException& e) override;

 private:
  void ReportForDuty(const ctsim::Message& m);
  void PollServerInfo(const std::string& rs, int attempt);
  void ServerInfo(const ctsim::Message& m);
  void Activate();
  void AssignInitialRegions();
  void AssignRegion(const std::string& region, const std::string& rs, bool rebalance);
  void ServerCrashProcedure(const std::string& rs);
  void Locate(const ctsim::Message& m);
  void ForceBalance(const ctsim::Message& m);
  void BalancerChore();
  void StuckRegionChore();
  std::string PickServer(const std::string& exclude);

  const HBaseArtifacts* artifacts_;
  const HBaseConfig* config_;
  HBaseJobState* job_;

  bool active_ = false;
  std::set<std::string> online_;            // ServerManager.onlineServers
  std::set<std::string> pending_info_;      // servers whose startup read is pending
  std::string meta_candidate_;              // HMaster.metaServerCandidate
  std::map<std::string, RegionState> regions_;  // AssignmentManager.regionStates
  bool rebalanced_ = false;
  size_t assign_rr_ = 0;
};

class RegionServer : public ctsim::Node {
 public:
  RegionServer(ctsim::Cluster* cluster, std::string id, std::string master, std::string zk,
               const HBaseArtifacts* artifacts, const HBaseConfig* config);

  bool init_done() const { return init_done_; }
  const std::map<std::string, std::string>& online_regions() const { return regions_; }

 protected:
  void OnStart() override;
  void OnShutdown() override;

 private:
  void OpenRegion(const ctsim::Message& m);

  std::string master_;
  std::string zk_;
  const HBaseArtifacts* artifacts_;
  const HBaseConfig* config_;
  bool init_done_ = false;
  bool zk_registered_ = false;
  std::map<std::string, std::string> regions_;  // HRegionServer.onlineRegions
};

class HBaseClient : public ctsim::Node {
 public:
  HBaseClient(ctsim::Cluster* cluster, std::string id, std::string master, int num_ops,
              const HBaseArtifacts* artifacts, const HBaseConfig* config, HBaseJobState* job);

  void StartWorkload();

 private:
  void NextOp();
  void RetryCheck(int serial);

  std::string master_;
  int num_ops_;
  const HBaseArtifacts* artifacts_;
  const HBaseConfig* config_;
  HBaseJobState* job_;

  int completed_ = 0;
  int serial_ = 0;
  int attempts_ = 0;
};

}  // namespace cthbase

#endif  // SRC_SYSTEMS_HBASE_HBASE_NODES_H_
