#include "src/systems/cassandra/cass_nodes.h"

#include "src/runtime/component_span.h"
#include "src/runtime/tracer.h"
#include "src/sim/exception.h"

namespace ctcass {

using ctsim::Message;
using ctsim::SimException;

// How long a removal's recovery actions stay in flight — the width of the
// seeded message-race window. A stale heartbeat landing inside it hits the
// race; a later one takes the benign resync path. Sub-second-scale on
// purpose: the paper's observation is that recovery windows are narrow,
// which is why blind fault injection rarely lands in them.
constexpr ctsim::Time kRemovalRaceWindowMs = 1200;

CassNode::CassNode(ctsim::Cluster* cluster, std::string id, std::vector<std::string> seeds,
                   const CassArtifacts* artifacts, const CassConfig* config)
    : Node(cluster, std::move(id)), seeds_(std::move(seeds)), artifacts_(artifacts),
      config_(config) {
  gossip_fd_ = std::make_unique<ctsim::FailureDetector>(
      this, config_->fd_timeout_ms, config_->fd_sweep_ms,
      [this](const std::string& peer) { PeerDown(peer); });

  Handle("gossip", [this](const Message& m) {
    CT_FRAME("Gossiper.applyStateLocally");
    auto downed = downed_peers_.find(m.from);
    if (downed != downed_peers_.end()) {
      const bool recovering =
          this->cluster().loop().Now() - downed->second <= kRemovalRaceWindowMs;
      downed_peers_.erase(downed);
      if (recovering) {
        // Gossip from an endpoint markDead already expired is applied
        // without the restart/generation check while hints for the death
        // are still being written (the gossip restart race): writes routed
        // while the peer was out now disagree with its re-announced state.
        throw SimException("IllegalStateException",
                           "Gossip restart race: endpoint " + m.from +
                               " rejoined after being marked dead");
      }
      // Hints already settled: benign restart path.
    }
    gossip_fd_->Heartbeat(m.from);
    if (std::find(ring_.begin(), ring_.end(), m.from) == ring_.end()) {
      ring_.push_back(m.from);
      std::sort(ring_.begin(), ring_.end());
      // Benign post-write: losing the freshly-seen peer just re-runs the
      // gossip round.
      CT_POST_WRITE(artifacts_->points.gossip_state_write, m.from);
      log().Log(artifacts_->stmts.node_up, {m.from});
    }
  });
  Handle("leaving", [this](const Message& m) { gossip_fd_->NotifyLeft(m.from); });
  Handle("mutate", [this](const Message& m) { Mutate(m); });
  Handle("hintedMutate", [this](const Message& m) { MutateHinted(m); });
  Handle("writeRow", [this](const Message& m) {
    CT_FRAME("Keyspace.apply");
    CT_IO_BEGIN(artifacts_->io.commitlog_append_io);
    CT_IO_END(artifacts_->io.commitlog_append_io);
    data_[m.Arg("key")] = m.Arg("val");
    Send(m.from, "rowAck", {{"key", m.Arg("key")}, {"client", m.Arg("client")}});
  });
  Handle("rowAck", [this](const Message& m) {
    Send(m.Arg("client"), "mutateReply", {{"key", m.Arg("key")}});
  });
}

void CassNode::OnStart() {
  ring_.push_back(id());
  log().Log(artifacts_->stmts.node_joined, {id()});
  Every(config_->gossip_ms, [this] {
    ctrt::ComponentSpan round(&this->cluster().loop(), "gossip-round", "Gossiper");
    for (const auto& peer : seeds_) {
      if (peer != id()) {
        Send(peer, "gossip", {});
      }
    }
  });
  gossip_fd_->Start();
}

void CassNode::OnShutdown() {
  for (const auto& peer : seeds_) {
    if (peer != id()) {
      Send(peer, "leaving", {});
    }
  }
}

void CassNode::OnHandlerException(const std::string& context, const SimException& e) {
  // UnavailableExceptions are returned to the coordinator's client; the
  // storage process survives.
  (void)context;
  (void)e;
}

void CassNode::PeerDown(const std::string& peer) {
  CT_FRAME("Gossiper.markDead");
  std::erase(ring_, peer);
  downed_peers_[peer] = this->cluster().loop().Now();
  log().Log(artifacts_->stmts.node_down, {peer});
}

void CassNode::MutateHinted(const Message& m) {
  // Blocking write used by the fuzz grammar: the replica set is resolved up
  // front, but the per-endpoint dispatch only runs after the write timeout —
  // CA-15131's actual gap. A replica that gossip marks dead inside that gap
  // is hinted instead of written, which the synchronous Mutate path above
  // can never do (its resolution and liveness check read the same ring).
  CT_FRAME("StorageProxy.performWrite");
  const std::string key = m.Arg("key");
  const std::string val = m.Arg("val");
  const std::vector<std::string> replicas = ReplicasFor(key);
  After(config_->fd_timeout_ms + 2 * config_->fd_sweep_ms, [this, replicas, key, val] {
    CT_FRAME("StorageProxy.performWrite");
    for (const std::string& replica : replicas) {
      if (replica == id()) {
        CT_FRAME("Keyspace.apply");
        CT_IO_BEGIN(artifacts_->io.commitlog_append_io);
        CT_IO_END(artifacts_->io.commitlog_append_io);
        data_[key] = val;
        log().Log(artifacts_->stmts.key_written, {key, replica});
        continue;
      }
      if (std::find(ring_.begin(), ring_.end(), replica) == ring_.end()) {
        CT_FRAME("HintsService.write");
        hints_[replica] = key;
        CT_POST_WRITE(artifacts_->points.hint_store_write, replica);
        log().Log(artifacts_->stmts.hint_written, {replica});
        continue;
      }
      Send(replica, "writeRow", {{"key", key}, {"val", val}, {"client", "fuzzer"}});
    }
  });
}

std::vector<std::string> CassNode::ReplicasFor(const std::string& key) {
  // Token ring over the *live* membership view: re-resolving after a node
  // leaves maps keys to surviving replicas, so a failed request succeeds on
  // retry. The CA-15131 window is the gap between this resolution and the
  // liveness re-check in Mutate. The partitioner hashes the trailing digits
  // of the key (ByteOrderedPartitioner-style, deterministic for tests).
  std::vector<std::string> replicas;
  if (ring_.empty()) {
    return replicas;
  }
  size_t token = 1;
  for (char c : key) {
    if (c >= '0' && c <= '9') {
      token = token * 10 + static_cast<size_t>(c - '0');
    }
  }
  for (int r = 0; r < config_->replication_factor && r < static_cast<int>(ring_.size()); ++r) {
    replicas.push_back(ring_[(token + r) % ring_.size()]);
  }
  return replicas;
}

void CassNode::Mutate(const Message& m) {
  CT_FRAME("StorageProxy.performWrite");
  const std::string key = m.Arg("key");
  const std::string client = m.from;
  bool sent = false;
  for (const std::string& replica : ReplicasFor(key)) {
    if (replica == id()) {
      // Local apply: no remote endpoint involved.
      CT_FRAME("Keyspace.apply");
      CT_IO_BEGIN(artifacts_->io.commitlog_append_io);
      CT_IO_END(artifacts_->io.commitlog_append_io);
      data_[key] = m.Arg("val");
      if (!sent) {
        sent = true;
        Send(client, "mutateReply", {{"key", key}});
      }
      log().Log(artifacts_->stmts.key_written, {key, replica});
      continue;
    }
    // CA-15131: the remote replica resolved from the token ring is used
    // without re-validating against the live view; a node that left during
    // the wait fails the request.
    CT_PRE_READ(artifacts_->points.coordinator_ring_read, replica);
    bool in_ring = std::find(ring_.begin(), ring_.end(), replica) != ring_.end();
    if (!in_ring) {
      if (!sent) {
        throw SimException("UnavailableException",
                           "Request fails due to using removed node " + replica);
      }
      // Secondary replica down: store a hint for later delivery instead.
      CT_FRAME("HintsService.write");
      hints_[replica] = key;
      CT_POST_WRITE(artifacts_->points.hint_store_write, replica);
      log().Log(artifacts_->stmts.hint_written, {replica});
      continue;
    }
    Send(replica, "writeRow", {{"key", key}, {"val", m.Arg("val")}, {"client", client}});
    if (!sent) {
      sent = true;  // consistency level ONE: first replica acks the client
    }
    log().Log(artifacts_->stmts.key_written, {key, replica});
  }
}

// --- Client -------------------------------------------------------------------

CassClient::CassClient(ctsim::Cluster* cluster, std::string id, std::vector<std::string> servers,
                       int num_ops, const CassArtifacts* artifacts, const CassConfig* config,
                       CassJobState* job)
    : Node(cluster, std::move(id)),
      servers_(std::move(servers)),
      num_ops_(num_ops),
      artifacts_(artifacts),
      config_(config),
      job_(job) {
  Handle("mutateReply", [this](const Message&) {
    ++serial_;
    attempts_ = 0;
    ++completed_;
    if (completed_ >= num_ops_) {
      job_->done = true;
      return;
    }
    After(config_->client_pacing_ms, [this] { NextOp(); });
  });
}

void CassClient::StartWorkload() {
  After(config_->client_start_ms, [this] { NextOp(); });
}

void CassClient::NextOp() {
  if (job_->done) {
    return;
  }
  const std::string& coordinator = servers_[coordinator_rr_++ % servers_.size()];
  Send(coordinator, "mutate", {{"key", RowKey(completed_)}, {"val", "v"}});
  int serial = serial_;
  After(config_->client_retry_ms, [this, serial] { RetryCheck(serial); });
}

void CassClient::RetryCheck(int serial) {
  if (job_->done || serial != serial_) {
    return;
  }
  if (++attempts_ > 40) {
    job_->failed = true;
    return;
  }
  NextOp();
}

}  // namespace ctcass
