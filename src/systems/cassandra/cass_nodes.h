// Mini-Cassandra nodes: gossiping storage peers and the Stress client.
#ifndef SRC_SYSTEMS_CASSANDRA_CASS_NODES_H_
#define SRC_SYSTEMS_CASSANDRA_CASS_NODES_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/sim/cluster.h"
#include "src/sim/failure_detector.h"
#include "src/systems/cassandra/cass_defs.h"

namespace ctcass {

struct CassJobState {
  bool done = false;
  bool failed = false;
};

class CassNode : public ctsim::Node {
 public:
  CassNode(ctsim::Cluster* cluster, std::string id, std::vector<std::string> seeds,
           const CassArtifacts* artifacts, const CassConfig* config);

  const std::vector<std::string>& ring() const { return ring_; }
  const std::map<std::string, std::string>& data() const { return data_; }

 protected:
  void OnStart() override;
  void OnShutdown() override;
  void OnHandlerException(const std::string& context, const ctsim::SimException& e) override;

 private:
  void Mutate(const ctsim::Message& m);
  void MutateHinted(const ctsim::Message& m);
  void PeerDown(const std::string& peer);
  std::vector<std::string> ReplicasFor(const std::string& key);

  std::vector<std::string> seeds_;  // all cluster members (static topology)
  const CassArtifacts* artifacts_;
  const CassConfig* config_;

  std::vector<std::string> ring_;                // TokenMetadata.ring (live view)
  // Peers markDead already expired, by expiry time. Gossip from one can
  // only arrive through a healed partition (a crashed peer never gossips
  // again, a leaving one announces first) — the seeded message race of
  // network-fault mode. The race is live only while hints and ring repair
  // for the death are still in flight; later stale gossip takes the benign
  // restart path. Either way the tombstone is cleared on first contact.
  std::map<std::string, ctsim::Time> downed_peers_;
  std::map<std::string, std::string> data_;      // row store
  std::map<std::string, std::string> hints_;     // HintsService.hints
  std::unique_ptr<ctsim::FailureDetector> gossip_fd_;
};

class CassClient : public ctsim::Node {
 public:
  CassClient(ctsim::Cluster* cluster, std::string id, std::vector<std::string> servers,
             int num_ops, const CassArtifacts* artifacts, const CassConfig* config,
             CassJobState* job);

  void StartWorkload();

 private:
  void NextOp();
  void RetryCheck(int serial);

  std::vector<std::string> servers_;
  int num_ops_;
  const CassArtifacts* artifacts_;
  const CassConfig* config_;
  CassJobState* job_;

  int completed_ = 0;
  int serial_ = 0;
  int attempts_ = 0;
  size_t coordinator_rr_ = 0;
};

}  // namespace ctcass

#endif  // SRC_SYSTEMS_CASSANDRA_CASS_NODES_H_
