#include "src/systems/cassandra/cass_system.h"

#include "src/systems/cassandra/cass_nodes.h"

namespace ctcass {

namespace {

class CassRun : public ctcore::WorkloadRun {
 public:
  CassRun(const CassSystem* system, int workload_size, uint64_t seed)
      : system_(system), workload_size_(workload_size), config_(system->config()),
        cluster_(seed) {
    // The run owns a scaled copy of the config; nodes point at it.
    config_.num_nodes *= system_->scale();
    const CassArtifacts* artifacts = &GetCassArtifacts();
    const CassConfig* config = &config_;
    std::vector<std::string> members;
    for (int i = 1; i <= config->num_nodes; ++i) {
      members.push_back("cass" + std::to_string(i) + ":7000");
    }
    for (const auto& member : members) {
      cluster_.AddNode<CassNode>(member, members, artifacts, config);
    }
    client_ = cluster_.AddNode<CassClient>("stress:9042", members, workload_size * 5, artifacts,
                                           config, &job_);
    client_->set_workload_driver(true);
  }

  ctsim::Cluster& cluster() override { return cluster_; }
  void Start() override { client_->StartWorkload(); }
  bool JobFinished() const override { return job_.done; }
  bool JobFailed() const override { return job_.failed; }
  ctsim::Time ExpectedDurationMs() const override {
    return 2500 + static_cast<ctsim::Time>(workload_size_) * 5 * (config_.client_pacing_ms + 60);
  }

 private:
  const CassSystem* system_;
  int workload_size_;
  CassConfig config_;  // scaled copy; nodes point at this
  ctsim::Cluster cluster_;
  CassJobState job_;
  CassClient* client_ = nullptr;
};

}  // namespace

std::unique_ptr<ctcore::WorkloadRun> CassSystem::MakeRun(int workload_size, uint64_t seed) const {
  return std::make_unique<CassRun>(this, workload_size, seed);
}

}  // namespace ctcass
