// SystemUnderTest adapter for mini-Cassandra (Table 4 row 5: Stress).
#ifndef SRC_SYSTEMS_CASSANDRA_CASS_SYSTEM_H_
#define SRC_SYSTEMS_CASSANDRA_CASS_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/system_under_test.h"
#include "src/systems/cassandra/cass_defs.h"

namespace ctcass {

class CassSystem : public ctcore::SystemUnderTest {
 public:
  explicit CassSystem(CassConfig config = CassConfig()) : config_(config) {}

  std::string name() const override { return "Cassandra"; }
  std::string version() const override { return "3.11.4"; }
  std::string workload_name() const override { return "Stress"; }
  const ctmodel::ProgramModel& model() const override { return GetCassArtifacts().model; }
  int default_workload_size() const override { return Scaled(4); }
  std::vector<ctcore::KnownBug> known_bugs() const override {
    return {
        // The message race first, so a network-fault injection that both
        // races gossip *and* fails a write triages to the race.
        {"CA-15158", "Major", "message-race", "Unresolved",
         "Gossip from dead endpoint applied without restart check", "InetAddressAndPort",
         "Gossiper.applyStateLocally", "Gossip restart race"},
        {"CA-15131", "Normal", "pre-read", "Unresolved", "Request fails due to using removed node",
         "InetAddressAndPort", "StorageProxy.performWrite", "using removed node"},
    };
  }

  const CassConfig& config() const { return config_; }

 protected:
  std::unique_ptr<ctcore::WorkloadRun> MakeRun(int workload_size, uint64_t seed) const override;

 private:
  CassConfig config_;
};

}  // namespace ctcass

#endif  // SRC_SYSTEMS_CASSANDRA_CASS_SYSTEM_H_
