// Static program model for mini-Cassandra. Table 10's Cassandra row shows a
// single meta-info type (the endpoint address) — the gossip-centric design
// funnels all node references through InetAddressAndPort.
#include "src/systems/cassandra/cass_defs.h"

#include "src/logging/statement.h"
#include "src/model/catalog.h"

namespace ctcass {

namespace {

using ctmodel::AccessKind;
using ctmodel::AccessPointDecl;
using ctmodel::FieldDecl;
using ctmodel::IoPointDecl;
using ctmodel::LogBinding;
using ctmodel::ProgramModel;
using ctmodel::TypeDecl;

CassArtifacts* Build() {
  auto* artifacts = new CassArtifacts();
  ProgramModel& model = artifacts->model;
  ctmodel::AddBaseTypes(&model);

  auto add_type = [&](const std::string& name, std::vector<std::string> elements = {},
                      bool closeable = false) {
    TypeDecl type;
    type.name = name;
    type.element_types = std::move(elements);
    type.closeable = closeable;
    model.AddType(type);
  };
  add_type("cassandra.locator.InetAddressAndPort");
  add_type("List<InetAddressAndPort>", {"cassandra.locator.InetAddressAndPort"});
  add_type("HashMap<InetAddressAndPort,EndpointState>",
           {"cassandra.locator.InetAddressAndPort"});
  add_type("HashMap<InetAddressAndPort,Hint>", {"cassandra.locator.InetAddressAndPort"});
  add_type("cassandra.db.commitlog.CommitLogSegment", {}, /*closeable=*/true);

  auto add_field = [&](const std::string& clazz, const std::string& name,
                       const std::string& type) {
    FieldDecl field;
    field.clazz = clazz;
    field.name = name;
    field.type = type;
    model.AddField(field);
  };
  add_field("TokenMetadata", "ring", "List<InetAddressAndPort>");
  add_field("Gossiper", "endpointStateMap", "HashMap<InetAddressAndPort,EndpointState>");
  add_field("HintsService", "hints", "HashMap<InetAddressAndPort,Hint>");

  auto add_point = [&](const std::string& field, AccessKind kind, const std::string& clazz,
                       const std::string& method, int line, const std::string& op = "",
                       bool sanity = false) {
    AccessPointDecl point;
    point.field_id = field;
    point.kind = kind;
    point.clazz = clazz;
    point.method = method;
    point.line = line;
    point.collection_op = op;
    point.sanity_checked = sanity;
    point.executable = true;
    return model.AddAccessPoint(point);
  };
  auto& points = artifacts->points;
  points.coordinator_ring_read = add_point("TokenMetadata.ring", AccessKind::kRead, "StorageProxy",
                                           "performWrite", 210, "get");
  points.gossip_state_write = add_point("Gossiper.endpointStateMap", AccessKind::kWrite,
                                        "Gossiper", "applyStateLocally", 77, "put");
  points.hint_store_write =
      add_point("HintsService.hints", AccessKind::kWrite, "HintsService", "write", 41, "put");
  points.read_path_read = add_point("TokenMetadata.ring", AccessKind::kRead, "StorageProxy",
                                    "readRegular", 330, "get", /*sanity=*/true);

  // Declared call structure. Writes fan out from the coordinator proxy; the
  // read path is a declared RPC entry the write-only workload never drives,
  // so its ring read is enumerable statically but never profiled.
  auto add_method = [&](const std::string& clazz, const std::string& name, bool entry = false) {
    ctmodel::MethodDecl method;
    method.clazz = clazz;
    method.name = name;
    method.entry_point = entry;
    model.AddMethod(method);
  };
  add_method("StorageProxy", "performWrite", /*entry=*/true);
  add_method("StorageProxy", "readRegular", /*entry=*/true);
  add_method("Gossiper", "applyStateLocally", /*entry=*/true);
  add_method("Gossiper", "markDead", /*entry=*/true);
  add_method("Keyspace", "apply");
  add_method("HintsService", "write");
  add_method("StorageService", "handleStateNormal");
  add_method("Gossiper", "markAlive");
  add_method("Gossiper", "gossipRound");
  // Gossip state application dispatches NORMAL transitions to the storage
  // service and flips endpoints alive on heartbeat echoes.
  model.AddCallEdge({"Gossiper.applyStateLocally", "StorageService.handleStateNormal",
                     ctmodel::CallKind::kStatic});
  model.AddCallEdge({"Gossiper.applyStateLocally", "Gossiper.markAlive",
                     ctmodel::CallKind::kStatic});
  model.AddCallEdge({"StorageProxy.performWrite", "Keyspace.apply", ctmodel::CallKind::kStatic});
  model.AddCallEdge({"StorageProxy.performWrite", "HintsService.write",
                     ctmodel::CallKind::kStatic});

  auto& registry = ctlog::StatementRegistry::Instance();
  auto& stmts = artifacts->stmts;
  auto bind = [&](int id, std::vector<ctmodel::LogArg> args) {
    LogBinding binding;
    binding.statement_id = id;
    binding.args = std::move(args);
    model.BindLog(binding);
  };
  stmts.node_joined = registry.Register(ctlog::Level::kInfo, "Node {} is now part of the cluster",
                                        "StorageService.handleStateNormal");
  bind(stmts.node_joined, {{"cassandra.locator.InetAddressAndPort", "TokenMetadata.ring"}});
  stmts.node_up =
      registry.Register(ctlog::Level::kInfo, "InetAddress {} is now UP", "Gossiper.markAlive");
  bind(stmts.node_up, {{"cassandra.locator.InetAddressAndPort", ""}});
  stmts.node_down =
      registry.Register(ctlog::Level::kWarn, "InetAddress {} is now DOWN", "Gossiper.markDead");
  bind(stmts.node_down, {{"cassandra.locator.InetAddressAndPort", ""}});
  stmts.hint_written = registry.Register(ctlog::Level::kInfo, "Writing hint for endpoint {}",
                                         "HintsService.write");
  bind(stmts.hint_written, {{"cassandra.locator.InetAddressAndPort", ""}});
  stmts.key_written = registry.Register(ctlog::Level::kInfo, "Key {} written to endpoint {}",
                                        "StorageProxy.performWrite");
  bind(stmts.key_written,
       {{"java.lang.String", ""}, {"cassandra.locator.InetAddressAndPort", ""}});

  model.AddIoMethod({"cassandra.db.commitlog.CommitLogSegment", "write"});
  model.AddIoMethod({"cassandra.db.commitlog.CommitLogSegment", "flush"});
  {
    IoPointDecl commitlog;
    commitlog.io_class = "cassandra.db.commitlog.CommitLogSegment";
    commitlog.io_method = "write";
    commitlog.callsite = "Keyspace.apply";
    commitlog.executable = true;
    artifacts->io.commitlog_append_io = model.AddIoPoint(commitlog);
  }

  ctmodel::CatalogSpec spec;
  spec.packages = {"org.apache.cassandra.db", "org.apache.cassandra.gms",
                   "org.apache.cassandra.streaming", "org.apache.cassandra.repair"};
  spec.stems = {"Compaction", "Memtable", "SSTable", "Stream", "Repair", "Batch", "View"};
  spec.suffixes = {"Manager", "Impl", "Service", "Task", "Util"};
  spec.num_classes = 180;
  spec.metainfo_field_types = {"cassandra.locator.InetAddressAndPort"};
  spec.holders_per_metainfo_type = 5;
  spec.seed = 0xca;
  ctmodel::PopulateCatalog(&model, spec);

  // Multi-crash hypotheses: a second peer dies while gossip/hints are still
  // converging on the first death.
  model.AddMultiCrashPair(
      {artifacts->points.coordinator_ring_read, artifacts->points.gossip_state_write,
       "replica lost under the coordinator's ring read (CA-15131), second peer lost "
       "while gossip is still propagating the first death"});
  model.AddMultiCrashPair(
      {artifacts->points.gossip_state_write, artifacts->points.hint_store_write,
       "peer lost during a gossip state update, hint target lost while hints for the "
       "first death are being stored"});

  // Network-fault window: partition the gossiping peer across markDead
  // (gossip fd 1500 ms + sweep), then heal — its resumed gossip is applied
  // without the restart/generation check (the CASSANDRA-15158 class of
  // gossip restart races).
  model.AddNetworkFaultWindow(
      {artifacts->points.gossip_state_write, 1900, "CA-15158",
       "peer partitioned across its own markDead, re-announced state applied "
       "without a generation check"});

  // Observability spans for the declared fault windows (campaign traces
  // label the injections "inject:<name>"; ctlint keeps the set complete).
  model.AddSpan({"coordinator.write", "StorageProxy.performWrite",
                 "coordinator write against the replica ring"});
  model.AddSpan({"gossip.apply-state", "Gossiper.applyStateLocally",
                 "gossip digest application on a peer"});
  model.AddSpan({"hints.store", "HintsService.write",
                 "hint storage for an unreachable replica"});
  // Recovery-phase anchors of the remaining executable crash points: the
  // equivalence partition keys on the span name.
  model.AddSpan({"coordinator.read", "StorageProxy.readRegular",
                 "coordinator read against the replica ring"});
  // Component span on its own anchor method (no existing injection anchor
  // changes): one gossip fan-out round, the role the fuzz grammar kills.
  model.AddSpan({"gossip-round", "Gossiper.gossipRound",
                 "one gossip digest fan-out round across the seeds", "Gossiper"});

  // Workload-fuzzing grammar: RPC ops name their declared handler, node ops
  // the class whose recovery logic the fault exercises (ctlint's
  // grammar-op-unknown-target keeps both honest).
  {
    ctmodel::GrammarOpDecl op;
    op.name = "cass.mutate";
    op.kind = ctmodel::GrammarOpKind::kRpc;
    op.target_method = "StorageProxy.performWrite";
    op.rpc_verb = "mutate";
    op.target_prefix = "cass";
    op.args = {{"key", "fuzz%MAG%"}, {"val", "fz"}};
    op.max_magnitude = 9;
    op.weight = 3;
    op.min_time_ms = 3500;
    op.max_time_ms = 8000;
    op.note = "extra write through an arbitrary coordinator";
    model.AddGrammarOp(op);
  }
  {
    ctmodel::GrammarOpDecl op;
    op.name = "cass.hinted-mutate";
    op.kind = ctmodel::GrammarOpKind::kRpc;
    op.target_method = "StorageProxy.performWrite";
    op.rpc_verb = "hintedMutate";
    op.target_prefix = "cass";
    op.args = {{"key", "fuzz%MAG%"}, {"val", "fz"}};
    op.max_magnitude = 9;
    op.weight = 3;
    op.min_time_ms = 1500;
    op.max_time_ms = 5000;
    op.note = "blocking write whose endpoint dispatch straddles a gossip death";
    model.AddGrammarOp(op);
  }
  {
    ctmodel::GrammarOpDecl op;
    op.name = "cass.kill-node";
    op.kind = ctmodel::GrammarOpKind::kCrash;
    op.target_class = "Gossiper";
    op.target_prefix = "cass";
    op.weight = 3;
    op.min_time_ms = 1500;
    op.max_time_ms = 3500;
    op.note = "fail-stop a node; gossip marks it dead and hints accumulate";
    model.AddGrammarOp(op);
  }
  {
    ctmodel::GrammarOpDecl op;
    op.name = "cass.decommission";
    op.kind = ctmodel::GrammarOpKind::kShutdown;
    op.target_class = "Gossiper";
    op.target_prefix = "cass";
    op.weight = 2;
    op.min_time_ms = 2000;
    op.max_time_ms = 9000;
    op.note = "graceful leave announcing itself through gossip";
    model.AddGrammarOp(op);
  }
  return artifacts;
}

}  // namespace

const CassArtifacts& GetCassArtifacts() {
  static const CassArtifacts* artifacts = Build();
  return *artifacts;
}

std::string RowKey(int index) { return "user" + std::to_string(100000 + index); }

}  // namespace ctcass
