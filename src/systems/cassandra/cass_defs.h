// Shared definitions for the mini-Cassandra system under test.
//
// Mini-Cassandra is the decentralized one: no master, gossip-based
// membership, a token ring mapping keys to replica sets, replicated writes
// through a coordinator, and hinted handoff for replicas that are known to
// be down. The seeded window is CA-15131: the coordinator resolves a replica
// from the ring without re-checking liveness, so a node that left between
// resolution and send fails the request ("Request fails due to using
// removed node", meta-info InetAddressAndPort).
#ifndef SRC_SYSTEMS_CASSANDRA_CASS_DEFS_H_
#define SRC_SYSTEMS_CASSANDRA_CASS_DEFS_H_

#include <string>

#include "src/model/program_model.h"

namespace ctcass {

struct CassConfig {
  int num_nodes = 3;
  int replication_factor = 2;
  uint64_t gossip_ms = 500;
  uint64_t fd_timeout_ms = 1500;
  uint64_t fd_sweep_ms = 250;
  uint64_t client_start_ms = 1500;
  uint64_t client_retry_ms = 1200;
  uint64_t client_pacing_ms = 120;
};

struct CassStatements {
  int node_joined = -1;  // "Node {} is now part of the cluster"
  int node_up = -1;      // "InetAddress {} is now UP"
  int node_down = -1;    // "InetAddress {} is now DOWN"
  int hint_written = -1;  // "Writing hint for endpoint {}"
  int key_written = -1;  // "Key {} written to endpoint {}"
};

struct CassPoints {
  int coordinator_ring_read = -1;  // CA-15131 pre-read (InetAddressAndPort)
  int gossip_state_write = -1;     // benign post-write
  int hint_store_write = -1;       // benign post-write
  int read_path_read = -1;         // sanity-checked read (pruned)
};

struct CassIoPoints {
  int commitlog_append_io = -1;
};

struct CassArtifacts {
  ctmodel::ProgramModel model{"Cassandra"};
  CassStatements stmts;
  CassPoints points;
  CassIoPoints io;
};

const CassArtifacts& GetCassArtifacts();

std::string RowKey(int index);

}  // namespace ctcass

#endif  // SRC_SYSTEMS_CASSANDRA_CASS_DEFS_H_
