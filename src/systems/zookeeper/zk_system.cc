#include "src/systems/zookeeper/zk_system.h"

#include "src/systems/zookeeper/zk_nodes.h"

namespace ctzk {

namespace {

class ZkRun : public ctcore::WorkloadRun {
 public:
  ZkRun(const ZkSystem* system, int workload_size, uint64_t seed)
      : system_(system), workload_size_(workload_size), config_(system->config()),
        cluster_(seed) {
    // The run owns a scaled copy of the config; peers point at it. The
    // ensemble stays an odd-or-even majority quorum at any size.
    config_.num_peers *= system_->scale();
    const ZkArtifacts* artifacts = &GetZkArtifacts();
    const ZkConfig* config = &config_;
    shared_ = std::make_unique<QuorumShared>();
    std::vector<std::string> peers;
    for (int i = 1; i <= config->num_peers; ++i) {
      peers.push_back("zkpeer" + std::to_string(i) + ":2888");
    }
    for (int i = 1; i <= config->num_peers; ++i) {
      cluster_.AddNode<ZkPeer>(peers[i - 1], i, peers, artifacts, config, shared_.get());
    }
    client_ = cluster_.AddNode<ZkClient>("zksmoke:11221", peers, workload_size * 2, artifacts,
                                         config, &job_);
    client_->set_workload_driver(true);
  }

  ctsim::Cluster& cluster() override { return cluster_; }
  void Start() override { client_->StartWorkload(); }
  bool JobFinished() const override { return job_.done; }
  bool JobFailed() const override { return job_.failed; }
  ctsim::Time ExpectedDurationMs() const override {
    return 3000 + static_cast<ctsim::Time>(workload_size_) * 1200;
  }

 private:
  const ZkSystem* system_;
  int workload_size_;
  ZkConfig config_;  // scaled copy; peers point at this
  ctsim::Cluster cluster_;
  std::unique_ptr<QuorumShared> shared_;
  ZkJobState job_;
  ZkClient* client_ = nullptr;
};

}  // namespace

std::unique_ptr<ctcore::WorkloadRun> ZkSystem::MakeRun(int workload_size, uint64_t seed) const {
  return std::make_unique<ZkRun>(this, workload_size, seed);
}

}  // namespace ctzk
