// Static program model for mini-ZooKeeper. The meta-info surface is small by
// design: node identity is an Integer (a base type the inference refuses to
// generalize), and only three non-base types end up classified (Table 10's
// ZooKeeper row: 3 types, 13 fields).
#include "src/systems/zookeeper/zk_defs.h"

#include "src/logging/statement.h"
#include "src/model/catalog.h"

namespace ctzk {

namespace {

using ctmodel::AccessKind;
using ctmodel::AccessPointDecl;
using ctmodel::FieldDecl;
using ctmodel::IoPointDecl;
using ctmodel::LogBinding;
using ctmodel::ProgramModel;
using ctmodel::TypeDecl;

ZkArtifacts* Build() {
  auto* artifacts = new ZkArtifacts();
  ProgramModel& model = artifacts->model;
  ctmodel::AddBaseTypes(&model);

  auto add_type = [&](const std::string& name, std::vector<std::string> elements = {},
                      bool closeable = false) {
    TypeDecl type;
    type.name = name;
    type.element_types = std::move(elements);
    type.closeable = closeable;
    model.AddType(type);
  };
  add_type("zookeeper.server.Session");
  add_type("zookeeper.data.ZNode");
  add_type("zookeeper.server.quorum.QuorumPeer");
  add_type("HashMap<String,ZNode>", {"java.lang.String", "zookeeper.data.ZNode"});
  add_type("HashMap<Long,Session>", {"java.lang.Long", "zookeeper.server.Session"});
  add_type("zookeeper.server.persistence.TxnLog", {}, /*closeable=*/true);
  add_type("zookeeper.server.persistence.SnapShot", {}, /*closeable=*/true);

  auto add_field = [&](const std::string& clazz, const std::string& name,
                       const std::string& type, bool ctor_only = false) {
    FieldDecl field;
    field.clazz = clazz;
    field.name = name;
    field.type = type;
    field.set_only_in_constructor = ctor_only;
    model.AddField(field);
  };
  add_field("DataTree", "nodes", "HashMap<String,ZNode>");
  add_field("SessionTracker", "sessionsById", "HashMap<Long,Session>");
  add_field("QuorumPeer", "myid", "java.lang.Integer");  // node as Integer (§3.4)
  add_field("QuorumPeer", "currentLeader", "java.lang.Integer");
  add_field("zookeeper.server.Session", "owner", "java.lang.Integer", /*ctor_only=*/true);

  auto add_point = [&](const std::string& field, AccessKind kind, const std::string& clazz,
                       const std::string& method, int line, const std::string& op = "",
                       const std::string& context = "") {
    AccessPointDecl point;
    point.field_id = field;
    point.kind = kind;
    point.clazz = clazz;
    point.method = method;
    point.line = line;
    point.collection_op = op;
    point.context_method = context;
    point.executable = true;
    return model.AddAccessPoint(point);
  };
  auto& points = artifacts->points;
  points.leader_session_read = add_point("SessionTracker.sessionsById", AccessKind::kRead,
                                         "PrepRequestProcessor", "pRequest", 120, "get");
  points.znode_create_write =
      add_point("DataTree.nodes", AccessKind::kWrite, "DataTree", "createNode", 310, "put");
  points.znode_get_read =
      add_point("DataTree.nodes", AccessKind::kRead, "DataTree", "getData", 402, "get");
  points.quorum_member_write = add_point("QuorumPeer.currentLeader", AccessKind::kWrite,
                                         "QuorumPeer", "updateElectionVote", 88);
  // The leader reference is checked while pRequest decides whether to
  // forward; the follower processor's own frame is not pushed yet.
  points.leader_ref_read = add_point("QuorumPeer.currentLeader", AccessKind::kRead,
                                     "FollowerRequestProcessor", "processRequest", 71, "",
                                     "PrepRequestProcessor.pRequest");

  // Declared call structure. The request pipeline forwards createNode from
  // both the prep processor (leader path) and the sync thread (replay path).
  auto add_method = [&](const std::string& clazz, const std::string& name, bool entry = false) {
    ctmodel::MethodDecl method;
    method.clazz = clazz;
    method.name = name;
    method.entry_point = entry;
    model.AddMethod(method);
  };
  add_method("PrepRequestProcessor", "pRequest", /*entry=*/true);
  add_method("SyncRequestProcessor", "run", /*entry=*/true);
  add_method("DataTree", "getData", /*entry=*/true);
  add_method("QuorumPeer", "updateElectionVote", /*entry=*/true);
  add_method("QuorumPeer", "start", /*entry=*/true);
  add_method("DataTree", "createNode");
  add_method("FollowerRequestProcessor", "processRequest");
  add_method("QuorumPeer", "lead");
  add_method("QuorumPeer", "broadcastHeartbeats");
  add_method("ZooKeeperServer", "loadData");
  add_method("SessionTracker", "createSession");
  add_method("SyncRequestProcessor", "snapshot");
  add_method("FinalRequestProcessor", "processRequest", /*entry=*/true);
  // The peer main thread leads after election and replays the snapshot
  // before serving; sessions are minted on the request path; the sync
  // thread rolls snapshots between txn batches.
  model.AddCallEdge({"QuorumPeer.start", "QuorumPeer.lead", ctmodel::CallKind::kStatic});
  model.AddCallEdge({"QuorumPeer.lead", "ZooKeeperServer.loadData",
                     ctmodel::CallKind::kStatic});
  model.AddCallEdge({"PrepRequestProcessor.pRequest", "SessionTracker.createSession",
                     ctmodel::CallKind::kStatic});
  model.AddCallEdge({"SyncRequestProcessor.run", "SyncRequestProcessor.snapshot",
                     ctmodel::CallKind::kStatic});
  model.AddCallEdge({"PrepRequestProcessor.pRequest", "DataTree.createNode",
                     ctmodel::CallKind::kStatic});
  model.AddCallEdge({"SyncRequestProcessor.run", "DataTree.createNode",
                     ctmodel::CallKind::kStatic});
  model.AddCallEdge({"PrepRequestProcessor.pRequest", "FollowerRequestProcessor.processRequest",
                     ctmodel::CallKind::kStatic});
  // sync routes the read through the processor chain before touching the tree.
  model.AddCallEdge({"FinalRequestProcessor.processRequest", "DataTree.getData",
                     ctmodel::CallKind::kStatic});

  auto& registry = ctlog::StatementRegistry::Instance();
  auto& stmts = artifacts->stmts;
  auto bind = [&](int id, std::vector<ctmodel::LogArg> args) {
    LogBinding binding;
    binding.statement_id = id;
    binding.args = std::move(args);
    model.BindLog(binding);
  };
  stmts.peer_up = registry.Register(ctlog::Level::kInfo, "Peer {} joined the quorum with myid {}",
                                    "QuorumPeer.start");
  bind(stmts.peer_up, {{"zookeeper.server.quorum.QuorumPeer", ""},
                       {"java.lang.Integer", "QuorumPeer.myid"}});
  stmts.leading =
      registry.Register(ctlog::Level::kInfo, "Peer {} LEADING the quorum", "QuorumPeer.lead");
  bind(stmts.leading, {{"zookeeper.server.quorum.QuorumPeer", ""}});
  stmts.session_opened = registry.Register(ctlog::Level::kInfo, "Session {} established on server {}",
                                           "SessionTracker.createSession");
  bind(stmts.session_opened, {{"zookeeper.server.Session", ""},
                              {"zookeeper.server.quorum.QuorumPeer", ""}});
  stmts.znode_created = registry.Register(ctlog::Level::kInfo, "Created znode {} on server {}",
                                          "DataTree.createNode");
  bind(stmts.znode_created,
       {{"zookeeper.data.ZNode", ""}, {"zookeeper.server.quorum.QuorumPeer", ""}});
  stmts.recovering = registry.Register(ctlog::Level::kInfo, "Recovering from snapshot with {} znodes",
                                       "ZooKeeperServer.loadData");
  bind(stmts.recovering, {{"java.lang.Integer", ""}});

  model.AddIoMethod({"zookeeper.server.persistence.TxnLog", "write"});
  model.AddIoMethod({"zookeeper.server.persistence.TxnLog", "flush"});
  model.AddIoMethod({"zookeeper.server.persistence.SnapShot", "write"});
  {
    IoPointDecl txn;
    txn.io_class = "zookeeper.server.persistence.TxnLog";
    txn.io_method = "write";
    txn.callsite = "SyncRequestProcessor.run";
    txn.executable = true;
    artifacts->io.txnlog_append_io = model.AddIoPoint(txn);
    IoPointDecl snap;
    snap.io_class = "zookeeper.server.persistence.SnapShot";
    snap.io_method = "write";
    snap.callsite = "SyncRequestProcessor.snapshot";
    snap.executable = true;
    artifacts->io.snapshot_write_io = model.AddIoPoint(snap);
  }

  ctmodel::CatalogSpec spec;
  spec.packages = {"org.apache.zookeeper.server", "org.apache.zookeeper.server.quorum",
                   "org.apache.zookeeper.client"};
  spec.stems = {"Election", "Watch", "Txn", "Request", "Learner", "Observer"};
  spec.suffixes = {"Manager", "Impl", "Processor", "Handler", "Util"};
  spec.num_classes = 60;
  spec.metainfo_field_types = {"zookeeper.data.ZNode"};
  spec.holders_per_metainfo_type = 2;
  spec.seed = 0x2b;
  ctmodel::PopulateCatalog(&model, spec);

  // Multi-crash hypotheses: the second crash lands during the leader election
  // or view change the first crash triggered.
  model.AddMultiCrashPair(
      {artifacts->points.leader_session_read, artifacts->points.leader_ref_read,
       "leader lost on the session write path, new leader lost while a follower "
       "forwards to it mid election recovery"});
  model.AddMultiCrashPair(
      {artifacts->points.znode_create_write, artifacts->points.quorum_member_write,
       "participant lost right after a znode commit, second participant lost during "
       "the quorum view update, probing quorum loss handling"});

  // Network-fault window: partition the leader resolved from the session
  // read long enough for the quorum to expire it (fd 1500 ms + sweep), then
  // heal — its resumed heartbeats race the peers' election view
  // (ZOOKEEPER-2212 class).
  model.AddNetworkFaultWindow(
      {artifacts->points.leader_session_read, 1900, "ZOOKEEPER-2212",
       "leader partitioned across its own expiry, heartbeats resume into peers "
       "that already voted it out"});

  // Observability spans for the declared fault windows (campaign traces
  // label the injections "inject:<name>"; ctlint keeps the set complete).
  model.AddSpan({"leader.prep-request", "PrepRequestProcessor.pRequest",
                 "request pipeline on the leader's session path"});
  model.AddSpan({"tree.create-znode", "DataTree.createNode",
                 "znode commit into the data tree"});
  model.AddSpan({"quorum.update-vote", "QuorumPeer.updateElectionVote",
                 "quorum view/vote update during election recovery"});
  // Recovery-phase anchors of the remaining executable crash points: the
  // equivalence partition keys on the span name.
  model.AddSpan({"tree.get-znode", "DataTree.getData",
                 "znode read out of the data tree"});
  // Component span: each quorum-broadcast round a peer runs (the O(peers²)
  // heartbeat fan-out, ROADMAP item 1b). Anchored at its own method decl so
  // existing injection-span anchors are untouched; the component attribute
  // is what `ctstat --top` attributes virtual-time dwell to.
  model.AddSpan({"quorum-broadcast", "QuorumPeer.broadcastHeartbeats",
                 "one peer-heartbeat fan-out round across the quorum", "QuorumPeer"});

  // Workload-fuzzing grammar: RPC ops name their declared handler, node ops
  // the class whose recovery logic the fault exercises (ctlint's
  // grammar-op-unknown-target keeps both honest).
  {
    ctmodel::GrammarOpDecl op;
    op.name = "zk.create";
    op.kind = ctmodel::GrammarOpKind::kRpc;
    op.target_method = "PrepRequestProcessor.pRequest";
    op.rpc_verb = "create";
    op.target_prefix = "zkpeer";
    op.args = {{"path", "/fuzz/node-%MAG%"}, {"data", "fz"}};
    op.max_magnitude = 4;
    op.weight = 3;
    op.min_time_ms = 1000;
    op.max_time_ms = 8000;
    op.note = "create sent to an arbitrary peer; followers forward to the leader";
    model.AddGrammarOp(op);
  }
  {
    ctmodel::GrammarOpDecl op;
    op.name = "zk.get";
    op.kind = ctmodel::GrammarOpKind::kRpc;
    op.target_method = "DataTree.getData";
    op.rpc_verb = "get";
    op.target_prefix = "zkpeer";
    op.args = {{"path", "/fuzz/node-%MAG%"}};
    op.max_magnitude = 4;
    op.weight = 2;
    op.min_time_ms = 1500;
    op.max_time_ms = 9000;
    op.note = "read against a replica that may not have replicated yet";
    model.AddGrammarOp(op);
  }
  {
    ctmodel::GrammarOpDecl op;
    op.name = "zk.sync-read";
    op.kind = ctmodel::GrammarOpKind::kRpc;
    op.target_method = "FinalRequestProcessor.processRequest";
    op.rpc_verb = "sync";
    op.target_prefix = "zkpeer";
    op.args = {{"path", "/fuzz/node-%MAG%"}};
    op.max_magnitude = 4;
    op.weight = 2;
    op.min_time_ms = 1500;
    op.max_time_ms = 9000;
    op.note = "sync'd read through the full request-processor chain";
    model.AddGrammarOp(op);
  }
  {
    ctmodel::GrammarOpDecl op;
    op.name = "zk.kill-peer";
    op.kind = ctmodel::GrammarOpKind::kCrash;
    op.target_class = "QuorumPeer";
    op.target_prefix = "zkpeer";
    op.weight = 3;
    op.min_time_ms = 1500;
    op.max_time_ms = 7000;
    op.note = "fail-stop a peer; leader churn when the ordinal hits the leader";
    model.AddGrammarOp(op);
  }
  {
    ctmodel::GrammarOpDecl op;
    op.name = "zk.stop-peer";
    op.kind = ctmodel::GrammarOpKind::kShutdown;
    op.target_class = "QuorumPeer";
    op.target_prefix = "zkpeer";
    op.weight = 1;
    op.min_time_ms = 1500;
    op.max_time_ms = 7000;
    op.note = "graceful peer stop; heartbeats cease without a crash record";
    model.AddGrammarOp(op);
  }
  return artifacts;
}

}  // namespace

const ZkArtifacts& GetZkArtifacts() {
  static const ZkArtifacts* artifacts = Build();
  return *artifacts;
}

std::string ZnodePath(int index) { return "/smoketest/node-" + std::to_string(index); }

std::string SessionId(int index) { return "0x1663e7ab" + std::to_string(4000 + index); }

}  // namespace ctzk
