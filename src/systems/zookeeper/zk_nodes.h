// Mini-ZooKeeper nodes: quorum peers with full state replication, plus the
// SmokeTest client.
#ifndef SRC_SYSTEMS_ZOOKEEPER_ZK_NODES_H_
#define SRC_SYSTEMS_ZOOKEEPER_ZK_NODES_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/sim/cluster.h"
#include "src/sim/failure_detector.h"
#include "src/systems/zookeeper/zk_defs.h"

namespace ctzk {

struct ZkJobState {
  bool done = false;
  bool failed = false;
};

// Run-shared marker for a write that was in flight when the leader died; the
// next leader truncates the torn record with a handled exception.
struct QuorumShared {
  bool write_in_flight = false;
};

class ZkPeer : public ctsim::Node {
 public:
  ZkPeer(ctsim::Cluster* cluster, std::string id, int myid, std::vector<std::string> peers,
         const ZkArtifacts* artifacts, const ZkConfig* config, QuorumShared* shared);

  bool IsLeader() const;
  const std::map<std::string, std::string>& znodes() const { return znodes_; }

 protected:
  void OnStart() override;
  void OnHandlerException(const std::string& context, const ctsim::SimException& e) override;

 private:
  void CreateRequest(const ctsim::Message& m);
  void GetRequest(const ctsim::Message& m);
  void SyncRequest(const ctsim::Message& m);
  void ApplyCreate(const std::string& path, const std::string& data);
  void PeerLost(const std::string& peer);
  std::string LeaderId() const;

  int myid_;
  std::vector<std::string> peers_;  // all quorum members including self
  const ZkArtifacts* artifacts_;
  const ZkConfig* config_;
  QuorumShared* shared_;

  std::set<std::string> alive_peers_;
  // Peers this replica already expired from its election view, by expiry
  // time. A heartbeat from one can only arrive through a healed partition
  // (a crashed peer never speaks again) — the seeded message race of
  // network-fault mode. The race is live only while the re-election the
  // expiry triggered is still converging; later stale heartbeats re-admit
  // the peer benignly. Either way the tombstone is cleared on first
  // contact.
  std::map<std::string, ctsim::Time> lost_peers_;
  std::map<std::string, std::string> znodes_;    // DataTree.nodes (full replica)
  std::map<std::string, std::string> sessions_;  // SessionTracker.sessionsById
  std::string current_leader_;
  std::set<std::string> pending_commits_;
  bool announced_leading_ = false;
  int session_counter_ = 0;
  std::unique_ptr<ctsim::FailureDetector> peer_fd_;
};

class ZkClient : public ctsim::Node {
 public:
  ZkClient(ctsim::Cluster* cluster, std::string id, std::vector<std::string> servers, int num_ops,
           const ZkArtifacts* artifacts, const ZkConfig* config, ZkJobState* job);

  void StartWorkload();

 private:
  void NextOp();
  void RetryCheck(int serial);

  std::vector<std::string> servers_;
  int num_ops_;
  const ZkArtifacts* artifacts_;
  const ZkConfig* config_;
  ZkJobState* job_;

  int completed_ = 0;
  bool reading_ = false;
  int serial_ = 0;
  int attempts_ = 0;
  size_t server_rr_ = 0;
};

}  // namespace ctzk

#endif  // SRC_SYSTEMS_ZOOKEEPER_ZK_NODES_H_
