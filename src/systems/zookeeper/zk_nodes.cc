#include "src/systems/zookeeper/zk_nodes.h"

#include <algorithm>

#include "src/runtime/component_span.h"
#include "src/runtime/tracer.h"
#include "src/sim/exception.h"

namespace ctzk {

using ctsim::Message;

// How long a removal's recovery actions stay in flight — the width of the
// seeded message-race window. A stale heartbeat landing inside it hits the
// race; a later one takes the benign resync path. Sub-second-scale on
// purpose: the paper's observation is that recovery windows are narrow,
// which is why blind fault injection rarely lands in them.
constexpr ctsim::Time kRemovalRaceWindowMs = 1200;

ZkPeer::ZkPeer(ctsim::Cluster* cluster, std::string id, int myid, std::vector<std::string> peers,
               const ZkArtifacts* artifacts, const ZkConfig* config, QuorumShared* shared)
    : Node(cluster, std::move(id)),
      myid_(myid),
      peers_(std::move(peers)),
      artifacts_(artifacts),
      config_(config),
      shared_(shared) {
  peer_fd_ = std::make_unique<ctsim::FailureDetector>(
      this, config_->fd_timeout_ms, config_->fd_sweep_ms,
      [this](const std::string& peer) { PeerLost(peer); });

  Handle("peerHeartbeat", [this](const Message& m) {
    auto lost = lost_peers_.find(m.from);
    if (lost != lost_peers_.end()) {
      const bool recovering =
          this->cluster().loop().Now() - lost->second <= kRemovalRaceWindowMs;
      lost_peers_.erase(lost);
      if (recovering) {
        // The election view re-admits a peer it already expired without any
        // epoch sync, while the vote triggered by the expiry is still
        // converging: this replica voted (and possibly promoted) assuming
        // the peer was gone, and the rejoined peer still carries its old
        // view.
        throw ctsim::SimException("StaleEpochException",
                                  "Peer " + m.from +
                                      " rejoined the quorum without syncing its epoch");
      }
      // Election already reconverged: the peer is re-admitted benignly.
    }
    alive_peers_.insert(m.from);
    peer_fd_->Heartbeat(m.from);
    current_leader_ = LeaderId();
    if (IsLeader() && !announced_leading_) {
      announced_leading_ = true;
      log().Log(artifacts_->stmts.leading, {this->id()});
    }
  });
  Handle("create", [this](const Message& m) { CreateRequest(m); });
  Handle("get", [this](const Message& m) { GetRequest(m); });
  Handle("sync", [this](const Message& m) { SyncRequest(m); });
  Handle("propose", [this](const Message& m) {
    // Follower applies the replicated create and appends its txn log.
    CT_FRAME("SyncRequestProcessor.run");
    CT_IO_BEGIN(artifacts_->io.txnlog_append_io);
    CT_IO_END(artifacts_->io.txnlog_append_io);
    ApplyCreate(m.Arg("path"), m.Arg("data"));
    Send(m.from, "proposeAck", {{"path", m.Arg("path")}, {"client", m.Arg("client")}});
  });
  Handle("proposeAck", [this](const Message& m) {
    // Quorum: the first follower ack commits (leader + 1 of 3); later acks
    // for the same path are ignored.
    if (pending_commits_.erase(m.Arg("path")) == 0) {
      return;
    }
    shared_->write_in_flight = false;
    Send(m.Arg("client"), "createReply", {{"path", m.Arg("path")}});
  });
}

void ZkPeer::OnStart() {
  alive_peers_.insert(id());
  current_leader_ = LeaderId();
  log().Log(artifacts_->stmts.peer_up, {id(), std::to_string(myid_)});
  Every(config_->gossip_ms, [this] {
    // One quorum-broadcast round: the O(peers²) heartbeat fan-out the
    // scale-out profiling work targets (ROADMAP item 1b).
    ctrt::ComponentSpan round(&this->cluster().loop(), "quorum-broadcast", "QuorumPeer");
    for (const auto& peer : peers_) {
      if (peer != id()) {
        Send(peer, "peerHeartbeat", {});
      }
    }
  });
  peer_fd_->Start();
}

std::string ZkPeer::LeaderId() const {
  // Deterministic election: the highest-id live peer leads; every replica
  // holds the full state, so no data transfer is needed (the property the
  // paper credits for ZooKeeper's resilience to single crashes).
  std::string leader;
  for (const auto& peer : peers_) {
    if ((peer == id() || alive_peers_.count(peer) > 0) && peer > leader) {
      leader = peer;
    }
  }
  return leader;
}

bool ZkPeer::IsLeader() const { return LeaderId() == id(); }

void ZkPeer::OnHandlerException(const std::string& context, const ctsim::SimException& e) {
  // Quorum-layer exceptions are logged and the peer keeps serving: the next
  // heartbeat round reconverges the election view (a real ensemble member
  // rejects the stale connection rather than dying).
  (void)context;
  (void)e;
}

void ZkPeer::PeerLost(const std::string& peer) {
  alive_peers_.erase(peer);
  lost_peers_[peer] = this->cluster().loop().Now();
  std::string previous = current_leader_;
  current_leader_ = LeaderId();
  CT_FRAME("QuorumPeer.updateElectionVote");
  CT_POST_WRITE(artifacts_->points.quorum_member_write, peer);
  if (current_leader_ == id() && previous != id()) {
    // Promotion: reload from the local snapshot. A torn in-flight write
    // surfaces as an EOFException the loader handles by truncation — a
    // tolerated IO fault, not a bug.
    if (shared_->write_in_flight) {
      log().Warn("EOFException reading txn log, truncating torn transaction", {},
                 "ZooKeeperServer.loadData");
      shared_->write_in_flight = false;
    }
    log().Log(artifacts_->stmts.recovering, {std::to_string(znodes_.size())});
  }
}

void ZkPeer::CreateRequest(const Message& m) {
  CT_FRAME("PrepRequestProcessor.pRequest");
  if (!IsLeader()) {
    // Forward to the leader this peer believes in.
    CT_PRE_READ(artifacts_->points.leader_ref_read, current_leader_);
    if (!current_leader_.empty() && current_leader_ != id()) {
      CT_FRAME("FollowerRequestProcessor.processRequest");
      Send(current_leader_, "create",
           {{"path", m.Arg("path")}, {"data", m.Arg("data")}, {"client", m.Arg("client")}});
    }
    return;
  }
  std::string client = m.Arg("client").empty() ? m.from : m.Arg("client");
  // Session handling: full replicas make this read safe under any single
  // crash — the injection at this point is tolerated.
  std::string session = SessionId(session_counter_);
  if (sessions_.find(session) == sessions_.end()) {
    sessions_[session] = client;
    log().Log(artifacts_->stmts.session_opened, {session, id()});
  }
  CT_PRE_READ(artifacts_->points.leader_session_read, session);
  if (sessions_.find(session) == sessions_.end()) {
    return;  // Session expired; client will retry.
  }

  shared_->write_in_flight = true;
  CT_IO_BEGIN(artifacts_->io.txnlog_append_io);
  CT_IO_END(artifacts_->io.txnlog_append_io);
  ApplyCreate(m.Arg("path"), m.Arg("data"));
  pending_commits_.insert(m.Arg("path"));
  for (const auto& peer : peers_) {
    if (peer != id() && alive_peers_.count(peer) > 0) {
      Send(peer, "propose",
           {{"path", m.Arg("path")}, {"data", m.Arg("data")}, {"client", client}});
    }
  }
}

void ZkPeer::ApplyCreate(const std::string& path, const std::string& data) {
  CT_FRAME("DataTree.createNode");
  znodes_[path] = data;
  CT_POST_WRITE(artifacts_->points.znode_create_write, path);
  log().Log(artifacts_->stmts.znode_created, {path, id()});
}

void ZkPeer::SyncRequest(const Message& m) {
  // sync + read (the fuzz grammar's sync-read op): the read runs under the
  // final request processor rather than straight off the client connection,
  // so the znode lookup fires in the processor-chain context.
  CT_FRAME("FinalRequestProcessor.processRequest");
  GetRequest(m);
}

void ZkPeer::GetRequest(const Message& m) {
  CT_FRAME("DataTree.getData");
  const std::string& path = m.Arg("path");
  // Tolerated pre-read: the znode exists on every replica, so whichever
  // node the trigger removes, this lookup still succeeds somewhere.
  CT_PRE_READ(artifacts_->points.znode_get_read, path);
  auto it = znodes_.find(path);
  if (it == znodes_.end()) {
    return;  // Not yet replicated here; client retries.
  }
  Send(m.from, "getReply", {{"path", path}, {"data", it->second}});
}

// --- Client -------------------------------------------------------------------

ZkClient::ZkClient(ctsim::Cluster* cluster, std::string id, std::vector<std::string> servers,
                   int num_ops, const ZkArtifacts* artifacts, const ZkConfig* config,
                   ZkJobState* job)
    : Node(cluster, std::move(id)),
      servers_(std::move(servers)),
      num_ops_(num_ops),
      artifacts_(artifacts),
      config_(config),
      job_(job) {
  Handle("createReply", [this](const Message&) {
    ++serial_;
    attempts_ = 0;
    ++completed_;
    if (completed_ >= num_ops_) {
      completed_ = 0;
      reading_ = true;
    }
    After(config_->client_pacing_ms, [this] { NextOp(); });
  });
  Handle("getReply", [this](const Message&) {
    ++serial_;
    attempts_ = 0;
    ++completed_;
    if (completed_ >= num_ops_) {
      job_->done = true;
      return;
    }
    After(config_->client_pacing_ms, [this] { NextOp(); });
  });
}

void ZkClient::StartWorkload() {
  After(config_->client_start_ms, [this] { NextOp(); });
}

void ZkClient::NextOp() {
  if (job_->done) {
    return;
  }
  const std::string& server = servers_[server_rr_++ % servers_.size()];
  if (reading_) {
    Send(server, "get", {{"path", ZnodePath(completed_)}});
  } else {
    Send(server, "create",
         {{"path", ZnodePath(completed_)}, {"data", "smoke"}, {"client", id()}});
  }
  int serial = serial_;
  After(config_->client_retry_ms, [this, serial] { RetryCheck(serial); });
}

void ZkClient::RetryCheck(int serial) {
  if (job_->done || serial != serial_) {
    return;
  }
  if (++attempts_ > 40) {
    job_->failed = true;
    return;
  }
  NextOp();
}

}  // namespace ctzk
