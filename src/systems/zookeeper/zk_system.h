// SystemUnderTest adapter for mini-ZooKeeper (Table 4 row 4: SmokeTest+curl).
#ifndef SRC_SYSTEMS_ZOOKEEPER_ZK_SYSTEM_H_
#define SRC_SYSTEMS_ZOOKEEPER_ZK_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/system_under_test.h"
#include "src/systems/zookeeper/zk_defs.h"

namespace ctzk {

class ZkSystem : public ctcore::SystemUnderTest {
 public:
  explicit ZkSystem(ZkConfig config = ZkConfig()) : config_(config) {}

  std::string name() const override { return "ZooKeeper"; }
  std::string version() const override { return "3.5.4-beta"; }
  std::string workload_name() const override { return "SmokeTest+curl"; }
  const ctmodel::ProgramModel& model() const override { return GetZkArtifacts().model; }
  int default_workload_size() const override { return Scaled(4); }
  // The paper's crash campaign found no new ZooKeeper bugs and neither does
  // ours — the only entry is the seeded message race, reachable exclusively
  // by network-fault mode (a partitioned peer rejoining after its quorum
  // expired it; crashes can never re-deliver an expired peer's heartbeat).
  std::vector<ctcore::KnownBug> known_bugs() const override {
    return {
        {"ZOOKEEPER-2212", "Major", "message-race", "Unresolved",
         "Rejoining peer accepted without epoch sync", "QuorumPeer",
         "PrepRequestProcessor.pRequest", "rejoined the quorum without syncing"},
    };
  }

  const ZkConfig& config() const { return config_; }

 protected:
  std::unique_ptr<ctcore::WorkloadRun> MakeRun(int workload_size, uint64_t seed) const override;

 private:
  ZkConfig config_;
};

}  // namespace ctzk

#endif  // SRC_SYSTEMS_ZOOKEEPER_ZK_SYSTEM_H_
