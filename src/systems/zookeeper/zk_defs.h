// Shared definitions for the mini-ZooKeeper system under test.
//
// Mini-ZooKeeper reproduces the paper's *negative* result (§4.1.2
// discussion): unlike the other systems, every node keeps a full replica of
// the global state, so crash points exist (40 dynamic points in the paper)
// but injections only ever surface handled IO exceptions — CrashTuner finds
// no new bugs. The quorum elects the highest-id live peer as leader; writes
// are forwarded to the leader, replicated to followers, then committed. A
// leader crash mid-commit leaves a torn transaction that the next leader
// truncates with a *handled* EOFException, one of the paper's "4 different
// types of IO exceptions ... all handled by the system".
//
// The logging is deliberately sparse and node identity is an Integer myid —
// the conditions the paper blames for ZooKeeper's small meta-info yield.
#ifndef SRC_SYSTEMS_ZOOKEEPER_ZK_DEFS_H_
#define SRC_SYSTEMS_ZOOKEEPER_ZK_DEFS_H_

#include <string>

#include "src/model/program_model.h"

namespace ctzk {

struct ZkConfig {
  int num_peers = 3;
  uint64_t gossip_ms = 500;
  uint64_t fd_timeout_ms = 1500;
  uint64_t fd_sweep_ms = 250;
  uint64_t commit_delay_ms = 40;
  uint64_t client_start_ms = 1500;
  uint64_t client_retry_ms = 2500;
  uint64_t client_pacing_ms = 150;
};

struct ZkStatements {
  int peer_up = -1;        // "Peer {} joined the quorum with myid {}"
  int leading = -1;        // "Peer {} LEADING the quorum"
  int session_opened = -1;  // "Session {} established on server {}"
  int znode_created = -1;  // "Created znode {} on server {}"
  int recovering = -1;     // "Recovering from snapshot with {} znodes"
};

struct ZkPoints {
  int leader_session_read = -1;  // pre-read: session on the write path
  int znode_create_write = -1;   // post-write: znode map insert
  int znode_get_read = -1;       // pre-read: znode map lookup
  int quorum_member_write = -1;  // post-write: quorum view update
  int leader_ref_read = -1;      // pre-read: follower forwards to its leader
};

struct ZkIoPoints {
  int txnlog_append_io = -1;  // follower/leader transaction-log append
  int snapshot_write_io = -1;  // periodic snapshot
};

struct ZkArtifacts {
  ctmodel::ProgramModel model{"ZooKeeper"};
  ZkStatements stmts;
  ZkPoints points;
  ZkIoPoints io;
};

const ZkArtifacts& GetZkArtifacts();

std::string ZnodePath(int index);
std::string SessionId(int index);

}  // namespace ctzk

#endif  // SRC_SYSTEMS_ZOOKEEPER_ZK_DEFS_H_
