// The paper's curated bug-study data.
//
// Section 2 studies 116 crash-recovery bugs from the CREB and CBS databases,
// narrowing to 66 single-crash bugs of which 52 are timing-sensitive
// (Table 1). Section 4 adds the fix-complexity comparison (Table 6) and the
// Kubernetes study (Table 13). This module is data, not measurement: the
// benches print it alongside the measured counterparts so EXPERIMENTS.md can
// record paper-vs-reproduced for the study tables too.
#ifndef SRC_STUDY_BUG_STUDY_H_
#define SRC_STUDY_BUG_STUDY_H_

#include <map>
#include <string>
#include <vector>

namespace ctstudy {

enum class Scenario { kPreRead, kPostWrite, kNotTimingSensitive };

const char* ScenarioName(Scenario scenario);

// One studied bug (Table 1).
struct StudiedBug {
  std::string id;        // e.g. "YARN-5918"
  std::string system;    // Hadoop2 / HDFS / HBase / ZooKeeper
  std::string metainfo;  // meta-info accessed at the crash point
  Scenario scenario = Scenario::kPreRead;
  // §4.1.1 reproduction status in the paper.
  bool reproduced_by_paper = true;
  // Why not, when not ("not logged" / "lower layer" / "no node association").
  std::string not_reproduced_reason;
  // Reproduced by this repository's mini systems (legacy-mode runs).
  bool reproduced_here = false;
};

// Table 1 (52 timing-sensitive bugs) + the 14 non-timing-sensitive ones.
const std::vector<StudiedBug>& StudiedBugs();

// Summary counts used by benches and tests.
struct StudySummary {
  int total = 0;
  int timing_sensitive = 0;
  int non_timing_sensitive = 0;
  int pre_read = 0;
  int post_write = 0;
  int reproduced_by_paper = 0;
  std::map<std::string, int> per_system;
  std::map<std::string, int> per_metainfo;
};
StudySummary Summarize();

// Table 6: complexity of fixing newly detected bugs vs CREB bugs.
struct FixComplexityRow {
  std::string dataset;  // "CREB bugs" / "New bugs"
  double loc_per_patch = 0;
  double patches_per_bug = 0;
  double days_to_fix = 0;
  double comments = 0;
};
const std::vector<FixComplexityRow>& FixComplexity();

// Table 13: the 14 scheduling-related Kubernetes crash-recovery bugs, all
// triggered at meta-info access points.
struct KubernetesBug {
  std::string pr;        // e.g. "#53647"
  std::string metainfo;  // Node / Pod
};
const std::vector<KubernetesBug>& KubernetesBugs();

}  // namespace ctstudy

#endif  // SRC_STUDY_BUG_STUDY_H_
