#include "src/study/bug_study.h"

namespace ctstudy {

const char* ScenarioName(Scenario scenario) {
  switch (scenario) {
    case Scenario::kPreRead:
      return "pre-read";
    case Scenario::kPostWrite:
      return "post-write";
    case Scenario::kNotTimingSensitive:
      return "not-timing-sensitive";
  }
  return "?";
}

const std::vector<StudiedBug>& StudiedBugs() {
  static const std::vector<StudiedBug>* bugs = new std::vector<StudiedBug>{
      // --- Hadoop2 (Table 1) -------------------------------------------------
      {"YARN-8664", "Hadoop2", "AppAttemptId", Scenario::kPreRead, true, "", false},
      {"YARN-2273", "Hadoop2", "NodeId", Scenario::kPreRead, true, "", false},
      {"YARN-4227", "Hadoop2", "NodeId", Scenario::kPreRead, true, "", false},
      {"YARN-5195", "Hadoop2", "NodeId", Scenario::kPreRead, true, "", false},
      {"YARN-8233", "Hadoop2", "NodeId", Scenario::kPreRead, true, "", false},
      {"YARN-5918", "Hadoop2", "NodeId", Scenario::kPreRead, true, "", true},
      {"YARN-7007", "Hadoop2", "ApplicationId", Scenario::kPreRead, true, "", false},
      {"YARN-7591", "Hadoop2", "ApplicationId", Scenario::kPreRead, true, "", false},
      {"YARN-8222", "Hadoop2", "ApplicationId", Scenario::kPreRead, true, "", false},
      {"YARN-4355", "Hadoop2", "ApplicationId", Scenario::kPreRead, true, "", false},
      {"YARN-4502", "Hadoop2", "AppState", Scenario::kPreRead, false, "accessed variable not logged",
       false},
      {"MR-3596", "Hadoop2", "ContainerId", Scenario::kPreRead, true, "", false},
      {"YARN-4152", "Hadoop2", "ContainerId", Scenario::kPreRead, true, "", false},
      {"MR-4833", "Hadoop2", "ContainerId", Scenario::kPostWrite, true, "", false},
      {"MR-3031", "Hadoop2", "ContainerId", Scenario::kPostWrite, true, "", false},
      {"MR-4099", "Hadoop2", "File", Scenario::kPreRead, true, "", false},
      {"MR-3858", "Hadoop2", "TaskAttemptId", Scenario::kPostWrite, true, "", true},
      // --- HDFS ---------------------------------------------------------------
      {"HDFS-6231", "HDFS", "DatanodeInfo", Scenario::kPreRead, true, "", false},
      {"HDFS-3701", "HDFS", "DatanodeInfo", Scenario::kPreRead, true, "", false},
      {"HDFS-4596", "HDFS", "File", Scenario::kPreRead, false,
       "MD5 file name not associated to any node", false},
      {"HDFS-8240", "HDFS", "BPOfferService", Scenario::kPreRead, true, "", false},
      {"HDFS-5014", "HDFS", "BPOfferService", Scenario::kPostWrite, true, "", false},
      {"HDFS-4404", "HDFS", "NameNode", Scenario::kPostWrite, true, "", false},
      {"HDFS-3031", "HDFS", "NameNode", Scenario::kPostWrite, true, "", false},
      // --- HBase --------------------------------------------------------------
      {"HBASE-4539", "HBase", "RegionTransition", Scenario::kPreRead, true, "", false},
      {"HBASE-6070", "HBase", "RegionTransition", Scenario::kPreRead, true, "", false},
      {"HBASE-10090", "HBase", "RegionTransition", Scenario::kPostWrite, true, "", false},
      {"HBASE-19335", "HBase", "RegionTransition", Scenario::kPostWrite, true, "", false},
      {"HBASE-4540", "HBase", "HRegion", Scenario::kPreRead, true, "", false},
      {"HBASE-3365", "HBase", "HRegion", Scenario::kPreRead, true, "", false},
      {"HBASE-5927", "HBase", "HRegion", Scenario::kPreRead, true, "", false},
      {"HBASE-5155", "HBase", "HRegion", Scenario::kPostWrite, true, "", false},
      {"HBASE-3617", "HBase", "HRegionServer", Scenario::kPreRead, true, "", false},
      {"HBASE-3874", "HBase", "HRegionServer", Scenario::kPreRead, true, "", false},
      {"HBASE-3023", "HBase", "HRegionServer", Scenario::kPreRead, true, "", false},
      {"HBASE-3283", "HBase", "HRegionServer", Scenario::kPreRead, true, "", false},
      {"HBASE-3362", "HBase", "HRegionServer", Scenario::kPreRead, true, "", false},
      {"HBASE-3024", "HBase", "HRegionServer", Scenario::kPreRead, true, "", false},
      {"HBASE-18014", "HBase", "HRegionServer", Scenario::kPreRead, true, "", false},
      {"HBASE-14536", "HBase", "HRegionServer", Scenario::kPreRead, true, "", false},
      {"HBASE-14621", "HBase", "HRegionServer", Scenario::kPreRead, false,
       "accessed variable not logged", false},
      {"HBASE-13546", "HBase", "HRegionServer", Scenario::kPreRead, false,
       "accessed variable not logged", false},
      {"HBASE-10272", "HBase", "HRegionServer", Scenario::kPreRead, true, "", false},
      {"HBASE-2525", "HBase", "HRegionServer", Scenario::kPostWrite, true, "", false},
      {"HBASE-5063", "HBase", "HRegionServer", Scenario::kPostWrite, true, "", false},
      {"HBASE-8519", "HBase", "HRegionServer", Scenario::kPostWrite, true, "", false},
      {"HBASE-2797", "HBase", "HRegionServer", Scenario::kPostWrite, true, "", false},
      {"HBASE-7111", "HBase", "ZNode", Scenario::kPreRead, false,
       "meta-info in lower-layer ZooKeeper, not associated to target node", false},
      {"HBASE-5722", "HBase", "ZNode", Scenario::kPreRead, false,
       "meta-info in lower-layer ZooKeeper, not associated to target node", false},
      {"HBASE-5635", "HBase", "ZNode", Scenario::kPostWrite, false,
       "meta-info in lower-layer ZooKeeper, not associated to target node", false},
      {"HBASE-3722", "HBase", "File", Scenario::kPostWrite, true, "", false},
      // --- ZooKeeper ------------------------------------------------------------
      {"ZK-569", "ZooKeeper", "ZNode", Scenario::kPreRead, true, "", false},
      // --- 14 non-timing-sensitive bugs (§2, trivially triggered) ---------------
      {"MR-3463", "Hadoop2", "-", Scenario::kNotTimingSensitive, true, "", false},
      {"ZK-131", "ZooKeeper", "-", Scenario::kNotTimingSensitive, true, "", false},
      {"YARN-2816", "Hadoop2", "-", Scenario::kNotTimingSensitive, true, "", false},
      {"YARN-3103", "Hadoop2", "-", Scenario::kNotTimingSensitive, true, "", false},
      {"MR-5476", "Hadoop2", "-", Scenario::kNotTimingSensitive, true, "", false},
      {"MR-6190", "Hadoop2", "-", Scenario::kNotTimingSensitive, true, "", false},
      {"HDFS-3440", "HDFS", "-", Scenario::kNotTimingSensitive, true, "", false},
      {"HDFS-5283", "HDFS", "-", Scenario::kNotTimingSensitive, true, "", false},
      {"HDFS-6289", "HDFS", "-", Scenario::kNotTimingSensitive, true, "", false},
      {"HBASE-4088", "HBase", "-", Scenario::kNotTimingSensitive, true, "", false},
      {"HBASE-6060", "HBase", "-", Scenario::kNotTimingSensitive, true, "", false},
      {"HBASE-8912", "HBase", "-", Scenario::kNotTimingSensitive, true, "", false},
      {"ZK-1049", "ZooKeeper", "-", Scenario::kNotTimingSensitive, true, "", false},
      {"ZK-1653", "ZooKeeper", "-", Scenario::kNotTimingSensitive, true, "", false},
  };
  return *bugs;
}

StudySummary Summarize() {
  StudySummary summary;
  for (const auto& bug : StudiedBugs()) {
    ++summary.total;
    if (bug.scenario == Scenario::kNotTimingSensitive) {
      ++summary.non_timing_sensitive;
    } else {
      ++summary.timing_sensitive;
      ++summary.per_system[bug.system];
      ++summary.per_metainfo[bug.metainfo];
      if (bug.scenario == Scenario::kPreRead) {
        ++summary.pre_read;
      } else {
        ++summary.post_write;
      }
    }
    if (bug.reproduced_by_paper) {
      ++summary.reproduced_by_paper;
    }
  }
  return summary;
}

const std::vector<FixComplexityRow>& FixComplexity() {
  static const std::vector<FixComplexityRow>* rows = new std::vector<FixComplexityRow>{
      {"CREB bugs", 117.0, 4.0, 92.0, 26.0},
      {"New bugs", 114.8, 3.8, 16.8, 8.6},
  };
  return *rows;
}

const std::vector<KubernetesBug>& KubernetesBugs() {
  static const std::vector<KubernetesBug>* bugs = new std::vector<KubernetesBug>{
      {"#53647", "Node"}, {"#68984", "Node"}, {"#55262", "Node"}, {"#56622", "Node"},
      {"#69758", "Node"}, {"#71063", "Node"}, {"#73097", "Node"}, {"#78782", "Node"},
      {"#72895", "Pod"},  {"#68173", "Pod"},  {"#68892", "Pod"},  {"#70898", "Pod"},
      {"#71488", "Pod"},  {"#72259", "Pod"},
  };
  return *bugs;
}

}  // namespace ctstudy
